#include "nbhd/views.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "colsys/canon.hpp"

namespace dmm::nbhd {

namespace {

/// All size-`count` subsets of [k] that contain `forced` (or any subsets
/// if forced == kNoColour), in the canonical enumeration order the view
/// catalogue is defined by (lexicographic over the ascending colour pool).
void subsets(int k, int count, Colour forced, std::vector<std::vector<Colour>>& out) {
  std::vector<Colour> pool;
  for (Colour c = 1; c <= k; ++c) {
    if (c != forced) pool.push_back(c);
  }
  const int pick = forced == gk::kNoColour ? count : count - 1;
  if (pick < 0 || pick > static_cast<int>(pool.size())) return;
  std::vector<int> idx(static_cast<std::size_t>(pick));
  // Standard combination enumeration.
  for (int i = 0; i < pick; ++i) idx[static_cast<std::size_t>(i)] = i;
  while (true) {
    std::vector<Colour> chosen;
    if (forced != gk::kNoColour) chosen.push_back(forced);
    for (int i : idx) chosen.push_back(pool[static_cast<std::size_t>(i)]);
    std::sort(chosen.begin(), chosen.end());
    out.push_back(std::move(chosen));
    // Advance.
    int i = pick - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] ==
                         static_cast<int>(pool.size()) - pick + i) {
      --i;
    }
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < pick; ++j) {
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace

ViewCatalogue enumerate_views(int k, int d, int rho, int max_views) {
  if (d < 1 || d > k) throw std::invalid_argument("enumerate_views: need 1 <= d <= k");
  if (rho < 1) throw std::invalid_argument("enumerate_views: need rho >= 1");
  ViewCatalogue catalogue;
  catalogue.k = k;
  catalogue.d = d;
  catalogue.rho = rho;

  // The choice structure of a complete d-regular depth-rho view: the root
  // picks one of C(k, d) colour sets; every deeper internal node picks one
  // of C(k-1, d-1) extension sets given its parent colour.  All views share
  // one skeleton (level t has d·(d-1)^(t-1) nodes), so the catalogue is the
  // mixed-radix space of per-node choices — counted in closed form first,
  // which turns the blow-up guard into arithmetic instead of an out-of-
  // memory march (the seed built trees for up to max_views partials before
  // throwing).
  std::vector<std::vector<Colour>> root_options;
  subsets(k, d, gk::kNoColour, root_options);
  // Child option lists per parent colour, with the parent colour removed
  // (it names the upward edge): the remaining d-1 downward colours.
  std::vector<std::vector<std::vector<Colour>>> child_options(static_cast<std::size_t>(k) + 1);
  for (Colour p = 1; p <= k; ++p) {
    std::vector<std::vector<Colour>> with;
    subsets(k, d, p, with);
    for (auto& s : with) {
      s.erase(std::remove(s.begin(), s.end(), p), s.end());
      child_options[p].push_back(std::move(s));
    }
  }
  const std::size_t root_radix = root_options.size();
  const std::size_t child_radix = child_options[1].size();

  // Level sizes and the total count, with overflow saturation.
  std::vector<std::size_t> level_nodes{1};
  double total = static_cast<double>(root_radix);
  if (total > static_cast<double>(max_views)) {
    throw std::runtime_error("enumerate_views: catalogue exceeds max_views");
  }
  std::size_t internal_nodes = 1;
  for (int t = 1; t < rho; ++t) {
    // d·(d-1)^(t-1) nodes at level t.
    std::size_t m = static_cast<std::size_t>(d);
    for (int i = 1; i < t; ++i) m *= static_cast<std::size_t>(d - 1);
    level_nodes.push_back(m);
    internal_nodes += m;
    total *= std::pow(static_cast<double>(child_radix), static_cast<double>(m));
    if (total > static_cast<double>(max_views)) {
      throw std::runtime_error("enumerate_views: catalogue exceeds max_views");
    }
  }
  const std::size_t count = static_cast<std::size_t>(total);

  // Replay every choice vector into a tree, in the canonical order: the
  // root digit is most significant; within a level, lower BFS indices cycle
  // faster; deeper levels cycle faster than shallower ones.
  colsys::CanonicalStore store;
  std::vector<std::size_t> choices(internal_nodes, 0);  // BFS layout, root first
  std::vector<std::size_t> level_offset(static_cast<std::size_t>(rho), 0);
  for (int t = 1; t < rho; ++t) {
    level_offset[static_cast<std::size_t>(t)] =
        level_offset[static_cast<std::size_t>(t - 1)] + level_nodes[static_cast<std::size_t>(t - 1)];
  }
  struct Slot {
    colsys::NodeId v;
    Colour pc;
    int depth;
  };
  std::deque<Slot> queue;
  catalogue.views.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    std::size_t rem = n;
    for (int t = rho - 1; t >= 1; --t) {
      const std::size_t off = level_offset[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < level_nodes[static_cast<std::size_t>(t)]; ++i) {
        choices[off + i] = rem % child_radix;
        rem /= child_radix;
      }
    }
    choices[0] = rem;

    ColourSystem view(k, colsys::kExactRadius);
    queue.clear();
    queue.push_back({ColourSystem::root(), gk::kNoColour, 0});
    std::size_t next_choice = 0;
    while (!queue.empty()) {
      const Slot slot = queue.front();
      queue.pop_front();
      if (slot.depth == rho) continue;
      const auto& options = slot.depth == 0 ? root_options : child_options[slot.pc];
      for (Colour c : options[choices[next_choice]]) {
        queue.push_back({view.add_child(slot.v, c), c, slot.depth + 1});
      }
      ++next_choice;
    }
    // Canonical dedup (choice vectors are canonical already, but be safe):
    // the interner keeps the first occurrence, so ViewId == view index.
    if (store.intern(view, rho) == static_cast<colsys::ViewId>(catalogue.views.size())) {
      catalogue.views.push_back(std::move(view));
    }
  }
  return catalogue;
}

bool c_compatible(const ColourSystem& a, const ColourSystem& b, Colour c, int rho) {
  const colsys::NodeId ac = a.child(ColourSystem::root(), c);
  const colsys::NodeId bc = b.child(ColourSystem::root(), c);
  if (ac == colsys::kNullNode || bc == colsys::kNullNode) return false;
  // A's half across c, to depth rho-1 (the subtree at its c-child), must
  // equal B without its own c-branch, to depth rho-1 — and vice versa.
  std::vector<std::uint8_t> lhs, rhs;
  a.serialize_subtree_into(ac, gk::kNoColour, rho - 1, lhs);
  b.serialize_subtree_into(ColourSystem::root(), c, rho - 1, rhs);
  if (lhs != rhs) return false;
  lhs.clear();
  rhs.clear();
  b.serialize_subtree_into(bc, gk::kNoColour, rho - 1, lhs);
  a.serialize_subtree_into(ColourSystem::root(), c, rho - 1, rhs);
  return lhs == rhs;
}

std::vector<CompatiblePair> compatible_pairs(const ViewCatalogue& catalogue) {
  // (A, B, c) is compatible iff across(A, c) == remainder(B, c) and
  // across(B, c) == remainder(A, c), so bucketing by remainder keys turns
  // the quadratic scan into lookups.  Both halves are interned into dense
  // ids: the per-view work is two direct subtree serialisations (no
  // rerooted/pruned/restricted tree copies), and the match test is integer
  // equality.
  const int rho = catalogue.rho;
  const int k = catalogue.k;
  const int n = catalogue.size();
  colsys::CanonicalStore store;
  // The two per-(view, colour) root transforms as dense id→id maps, keyed
  // by the view's catalogue index (== its ViewId in enumeration order).
  colsys::TransformCache across(k), remainder(k);
  // Bucket key: (remainder id, colour) packed into 64 bits.
  const auto key = [](colsys::ViewId id, Colour c) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) << 8) |
           static_cast<std::uint64_t>(c);
  };
  std::unordered_map<std::uint64_t, std::vector<int>> by_remainder;
  std::vector<std::uint8_t> buf;
  for (int a = 0; a < n; ++a) {
    const ColourSystem& view = catalogue.views[static_cast<std::size_t>(a)];
    for (Colour c = 1; c <= k; ++c) {
      const colsys::NodeId child = view.child(ColourSystem::root(), c);
      if (child == colsys::kNullNode) continue;
      buf.clear();
      view.serialize_subtree_into(child, gk::kNoColour, rho - 1, buf);
      across.put(a, c, store.intern(buf));
      buf.clear();
      view.serialize_subtree_into(ColourSystem::root(), c, rho - 1, buf);
      const colsys::ViewId rem = store.intern(buf);
      remainder.put(a, c, rem);
      by_remainder[key(rem, c)].push_back(a);
    }
  }
  std::vector<CompatiblePair> out;
  for (int a = 0; a < n; ++a) {
    for (Colour c = 1; c <= k; ++c) {
      const colsys::ViewId ha = across.get(a, c);
      if (ha == colsys::kUncachedView) continue;
      const auto it = by_remainder.find(key(ha, c));
      if (it == by_remainder.end()) continue;
      const colsys::ViewId want = remainder.get(a, c);
      for (int b : it->second) {
        if (b < a) continue;  // emit each unordered pair once
        if (across.get(b, c) == want) out.push_back({a, b, c});
      }
    }
  }
  return out;
}

}  // namespace dmm::nbhd
