#include "nbhd/views.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

#include "colsys/canon.hpp"

namespace dmm::nbhd {

namespace {

/// All size-`count` subsets of [k] that contain `forced` (or any subsets
/// if forced == kNoColour), in the canonical enumeration order the view
/// catalogue is defined by (lexicographic over the ascending colour pool).
void subsets(int k, int count, Colour forced, std::vector<std::vector<Colour>>& out) {
  std::vector<Colour> pool;
  for (Colour c = 1; c <= k; ++c) {
    if (c != forced) pool.push_back(c);
  }
  const int pick = forced == gk::kNoColour ? count : count - 1;
  if (pick < 0 || pick > static_cast<int>(pool.size())) return;
  std::vector<int> idx(static_cast<std::size_t>(pick));
  // Standard combination enumeration.
  for (int i = 0; i < pick; ++i) idx[static_cast<std::size_t>(i)] = i;
  while (true) {
    std::vector<Colour> chosen;
    if (forced != gk::kNoColour) chosen.push_back(forced);
    for (int i : idx) chosen.push_back(pool[static_cast<std::size_t>(i)]);
    std::sort(chosen.begin(), chosen.end());
    out.push_back(std::move(chosen));
    // Advance.
    int i = pick - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] ==
                         static_cast<int>(pool.size()) - pick + i) {
      --i;
    }
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < pick; ++j) {
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

/// Replays every choice vector of the catalogue into its tree, in the
/// canonical order (root digit most significant; within a level, lower BFS
/// indices cycle faster; deeper levels cycle faster than shallower ones),
/// and hands each view to `fn`.  Throws before building anything when the
/// closed-form count exceeds `max_views`.  Drives the raw enumeration and
/// the replay-fold oracle (reduce_catalogue); the orbit enumeration itself
/// now runs on the orderly generator below and never replays these views.
void for_each_view(int k, int d, int rho, int max_views,
                   const std::function<void(ColourSystem&&)>& fn) {
  if (d < 1 || d > k) throw std::invalid_argument("enumerate_views: need 1 <= d <= k");
  if (rho < 1) throw std::invalid_argument("enumerate_views: need rho >= 1");

  // The choice structure of a complete d-regular depth-rho view: the root
  // picks one of C(k, d) colour sets; every deeper internal node picks one
  // of C(k-1, d-1) extension sets given its parent colour.  All views share
  // one skeleton (level t has d·(d-1)^(t-1) nodes), so the catalogue is the
  // mixed-radix space of per-node choices — counted in closed form first,
  // which turns the blow-up guard into arithmetic instead of an out-of-
  // memory march (the seed built trees for up to max_views partials before
  // throwing).
  std::vector<std::vector<Colour>> root_options;
  subsets(k, d, gk::kNoColour, root_options);
  // Child option lists per parent colour, with the parent colour removed
  // (it names the upward edge): the remaining d-1 downward colours.
  std::vector<std::vector<std::vector<Colour>>> child_options(static_cast<std::size_t>(k) + 1);
  for (Colour p = 1; p <= k; ++p) {
    std::vector<std::vector<Colour>> with;
    subsets(k, d, p, with);
    for (auto& s : with) {
      s.erase(std::remove(s.begin(), s.end(), p), s.end());
      child_options[p].push_back(std::move(s));
    }
  }
  const std::size_t root_radix = root_options.size();
  const std::size_t child_radix = child_options[1].size();

  // Level sizes and the total count, with overflow saturation.
  std::vector<std::size_t> level_nodes{1};
  double total = static_cast<double>(root_radix);
  if (total > static_cast<double>(max_views)) {
    throw std::runtime_error("enumerate_views: catalogue exceeds max_views");
  }
  std::size_t internal_nodes = 1;
  for (int t = 1; t < rho; ++t) {
    // d·(d-1)^(t-1) nodes at level t.
    std::size_t m = static_cast<std::size_t>(d);
    for (int i = 1; i < t; ++i) m *= static_cast<std::size_t>(d - 1);
    level_nodes.push_back(m);
    internal_nodes += m;
    total *= std::pow(static_cast<double>(child_radix), static_cast<double>(m));
    if (total > static_cast<double>(max_views)) {
      throw std::runtime_error("enumerate_views: catalogue exceeds max_views");
    }
  }
  const std::size_t count = static_cast<std::size_t>(total);

  std::vector<std::size_t> choices(internal_nodes, 0);  // BFS layout, root first
  std::vector<std::size_t> level_offset(static_cast<std::size_t>(rho), 0);
  for (int t = 1; t < rho; ++t) {
    level_offset[static_cast<std::size_t>(t)] =
        level_offset[static_cast<std::size_t>(t - 1)] + level_nodes[static_cast<std::size_t>(t - 1)];
  }
  struct Slot {
    colsys::NodeId v;
    Colour pc;
    int depth;
  };
  std::deque<Slot> queue;
  for (std::size_t n = 0; n < count; ++n) {
    std::size_t rem = n;
    for (int t = rho - 1; t >= 1; --t) {
      const std::size_t off = level_offset[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < level_nodes[static_cast<std::size_t>(t)]; ++i) {
        choices[off + i] = rem % child_radix;
        rem /= child_radix;
      }
    }
    choices[0] = rem;

    ColourSystem view(k, colsys::kExactRadius);
    queue.clear();
    queue.push_back({ColourSystem::root(), gk::kNoColour, 0});
    std::size_t next_choice = 0;
    while (!queue.empty()) {
      const Slot slot = queue.front();
      queue.pop_front();
      if (slot.depth == rho) continue;
      const auto& options = slot.depth == 0 ? root_options : child_options[slot.pc];
      for (Colour c : options[choices[next_choice]]) {
        queue.push_back({view.add_child(slot.v, c), c, slot.depth + 1});
      }
      ++next_choice;
    }
    fn(std::move(view));
  }
}

}  // namespace

ViewCatalogue enumerate_views(int k, int d, int rho, int max_views) {
  ViewCatalogue catalogue;
  catalogue.k = k;
  catalogue.d = d;
  catalogue.rho = rho;
  // Canonical dedup (choice vectors are canonical already, but be safe):
  // the interner keeps the first occurrence, so ViewId == view index.
  colsys::CanonicalStore store;
  for_each_view(k, d, rho, max_views, [&](ColourSystem&& view) {
    if (store.intern(view, rho) == static_cast<colsys::ViewId>(catalogue.views.size())) {
      catalogue.views.push_back(std::move(view));
    }
  });
  return catalogue;
}

bool c_compatible(const ColourSystem& a, const ColourSystem& b, Colour c, int rho) {
  const colsys::NodeId ac = a.child(ColourSystem::root(), c);
  const colsys::NodeId bc = b.child(ColourSystem::root(), c);
  if (ac == colsys::kNullNode || bc == colsys::kNullNode) return false;
  // A's half across c, to depth rho-1 (the subtree at its c-child), must
  // equal B without its own c-branch, to depth rho-1 — and vice versa.
  std::vector<std::uint8_t> lhs, rhs;
  a.serialize_subtree_into(ac, gk::kNoColour, rho - 1, lhs);
  b.serialize_subtree_into(ColourSystem::root(), c, rho - 1, rhs);
  if (lhs != rhs) return false;
  lhs.clear();
  rhs.clear();
  b.serialize_subtree_into(bc, gk::kNoColour, rho - 1, lhs);
  a.serialize_subtree_into(ColourSystem::root(), c, rho - 1, rhs);
  return lhs == rhs;
}

std::vector<CompatiblePair> compatible_pairs(const ViewCatalogue& catalogue) {
  // (A, B, c) is compatible iff across(A, c) == remainder(B, c) and
  // across(B, c) == remainder(A, c), so bucketing by remainder keys turns
  // the quadratic scan into lookups.  Both halves are interned into dense
  // ids: the per-view work is two direct subtree serialisations (no
  // rerooted/pruned/restricted tree copies), and the match test is integer
  // equality.
  const int rho = catalogue.rho;
  const int k = catalogue.k;
  const int n = catalogue.size();
  colsys::CanonicalStore store;
  // The two per-(view, colour) root transforms as dense id→id maps, keyed
  // by the view's catalogue index (== its ViewId in enumeration order).
  colsys::TransformCache across(k), remainder(k);
  // Bucket key: (remainder id, across id, colour) packed into 64 bits.
  // Bucketing on *both* halves means a probe only ever touches true
  // matches: b matches a iff rem(b) = across(a) and across(b) = rem(a),
  // i.e. the probe key is the bucket key with its halves swapped.
  const auto key = [](colsys::ViewId rem, colsys::ViewId acr, Colour c) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rem)) << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(acr)) << 8) |
           static_cast<std::uint64_t>(c);
  };
  std::unordered_map<std::uint64_t, std::vector<int>> by_halves;
  std::vector<std::uint8_t> buf;
  for (int a = 0; a < n; ++a) {
    const ColourSystem& view = catalogue.views[static_cast<std::size_t>(a)];
    for (Colour c = 1; c <= k; ++c) {
      const colsys::NodeId child = view.child(ColourSystem::root(), c);
      if (child == colsys::kNullNode) continue;
      buf.clear();
      view.serialize_subtree_into(child, gk::kNoColour, rho - 1, buf);
      const colsys::ViewId acr = store.intern(buf);
      across.put(a, c, acr);
      buf.clear();
      view.serialize_subtree_into(ColourSystem::root(), c, rho - 1, buf);
      const colsys::ViewId rem = store.intern(buf);
      remainder.put(a, c, rem);
      by_halves[key(rem, acr, c)].push_back(a);
    }
  }
  std::vector<CompatiblePair> out;
  for (int a = 0; a < n; ++a) {
    for (Colour c = 1; c <= k; ++c) {
      const colsys::ViewId ha = across.get(a, c);
      if (ha == colsys::kUncachedView) continue;
      const colsys::ViewId want = remainder.get(a, c);
      const auto it = by_halves.find(key(ha, want, c));
      if (it == by_halves.end()) continue;
      // Buckets are ascending by construction; emit each unordered pair
      // once by starting at the first b >= a.  The id re-check makes the
      // match exact even if the 64-bit key packing ever saturated (ids
      // beyond 2^24 would alias); in the normal regime it never fails.
      const auto& bucket = it->second;
      for (auto bi = std::lower_bound(bucket.begin(), bucket.end(), a); bi != bucket.end();
           ++bi) {
        if (remainder.get(*bi, c) == ha && across.get(*bi, c) == want) {
          out.push_back({a, *bi, c});
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Orbit census (Burnside / Cauchy–Frobenius over the S_k colour action).
// ---------------------------------------------------------------------------

namespace {

/// Cycle decomposition of σ restricted to the colour set `mask` (σ must map
/// mask onto itself); each cycle is reported as (length, minimal colour).
void cycles_on(const ColourPerm& sigma, unsigned mask,
               std::vector<std::pair<int, Colour>>& out) {
  out.clear();
  unsigned todo = mask;
  while (todo != 0) {
    const int first = std::countr_zero(todo);
    const Colour start = static_cast<Colour>(first + 1);
    int length = 0;
    Colour c = start;
    do {
      todo &= ~(1u << (c - 1));
      c = sigma[c];
      ++length;
    } while (c != start);
    out.emplace_back(length, start);
  }
}

ColourPerm perm_power(const ColourPerm& sigma, int e) {
  ColourPerm out = colsys::identity_perm(static_cast<int>(sigma.size()) - 1);
  for (int i = 0; i < e; ++i) out = colsys::compose_perm(sigma, out);
  return out;
}

/// Number of depth-`rem` hanging structures below an edge of colour p that
/// are fixed by σ (requires σ(p) == p).  Memoised per (σ rank, rem, p).
double fixed_hanging(int rem, const ColourPerm& sigma, Colour p, int k, int d,
                     std::map<std::tuple<std::uint32_t, int, Colour>, double>& memo) {
  if (rem == 0) return 1.0;
  const auto key = std::make_tuple(colsys::perm_rank(sigma), rem, p);
  const auto it = memo.find(key);
  if (it != memo.end()) return it->second;
  double total = 0.0;
  std::vector<std::pair<int, Colour>> cycle_list;
  // σ-invariant (d-1)-subsets S of [k] \ {p}: the node's downward colours.
  const unsigned pool = (k >= 32 ? ~0u : ((1u << k) - 1)) & ~(1u << (p - 1));
  for (unsigned s = 0; s < (1u << k); ++s) {
    if ((s & ~pool) != 0 || std::popcount(s) != d - 1) continue;
    unsigned image = 0;
    for (int c = 1; c <= k; ++c) {
      if (s & (1u << (c - 1))) image |= 1u << (sigma[static_cast<std::size_t>(c)] - 1);
    }
    if (image != s) continue;
    cycles_on(sigma, s, cycle_list);
    double product = 1.0;
    for (const auto& [length, c] : cycle_list) {
      product *= fixed_hanging(rem - 1, perm_power(sigma, length), c, k, d, memo);
    }
    total += product;
  }
  memo.emplace(key, total);
  return total;
}

/// Number of whole views fixed by σ.
double fixed_views(const ColourPerm& sigma, int k, int d, int rho,
                   std::map<std::tuple<std::uint32_t, int, Colour>, double>& memo) {
  double total = 0.0;
  std::vector<std::pair<int, Colour>> cycle_list;
  for (unsigned s = 0; s < (1u << k); ++s) {
    if (std::popcount(s) != d) continue;
    unsigned image = 0;
    for (int c = 1; c <= k; ++c) {
      if (s & (1u << (c - 1))) image |= 1u << (sigma[static_cast<std::size_t>(c)] - 1);
    }
    if (image != s) continue;
    cycles_on(sigma, s, cycle_list);
    double product = 1.0;
    for (const auto& [length, c] : cycle_list) {
      product *= fixed_hanging(rho - 1, perm_power(sigma, length), c, k, d, memo);
    }
    total += product;
  }
  return total;
}

}  // namespace

OrbitCensus orbit_census(int k, int d, int rho) {
  if (d < 1 || d > k) throw std::invalid_argument("orbit_census: need 1 <= d <= k");
  if (rho < 1) throw std::invalid_argument("orbit_census: need rho >= 1");
  if (k > colsys::kMaxOrbitColours) {
    throw std::invalid_argument("orbit_census: k too large for the orbit machinery");
  }
  OrbitCensus census;
  std::map<std::tuple<std::uint32_t, int, Colour>, double> memo;
  double sum = 0.0;
  double group_order = 0.0;
  for (const ColourPerm& sigma : colsys::all_perms(k)) {
    const double fixed = fixed_views(sigma, k, d, rho, memo);
    sum += fixed;
    group_order += 1.0;
    if (colsys::perm_rank(sigma) == 0) census.views = fixed;  // the identity
  }
  census.orbits = sum / group_order;
  return census;
}

// ---------------------------------------------------------------------------
// Orbit catalogues.
// ---------------------------------------------------------------------------

namespace {

/// Folds views into orbits.  On the first member of each orbit the view is
/// canonised (branch and bound) and the orbit's *entire* member set is
/// pre-generated as serialisations of the representative under every coset
/// permutation — every later member of the orbit then resolves by a single
/// hash lookup instead of a canonisation.  This is what keeps the orbit
/// enumeration of the 78 732-view k = 4, ρ = 3 catalogue at roughly the
/// cost of the raw enumeration while materialising only ~1/k! of the trees.
class OrbitBuilder {
 public:
  OrbitBuilder(int k, int d, int rho) : k_(k), d_(d), rho_(rho) {
    if (k > colsys::kMaxOrbitColours) {
      throw std::invalid_argument("orbit reduction: k too large for the orbit machinery");
    }
    perms_ = colsys::all_perms(k);
  }

  /// Pre-sizes the member index (one entry per raw view) so the fold never
  /// rehashes mid-stream.
  void reserve(std::size_t raw_views) { members_.reserve(raw_views); }

  void add(const ColourSystem& view) {
    buf_.clear();
    view.serialize_into(rho_, buf_);
    auto it = members_.find(buf_);
    if (it == members_.end()) {
      new_orbit(view);
      it = members_.find(buf_);
      if (it == members_.end()) {
        throw std::logic_error("OrbitBuilder: view missing from its own orbit");
      }
    }
    auto& [orbit, coset] = it->second;
    orbits_[static_cast<std::size_t>(orbit)].present[static_cast<std::size_t>(coset)] = 1;
  }

  OrbitCatalogue finish() {
    OrbitCatalogue catalogue;
    catalogue.k = k_;
    catalogue.d = d_;
    catalogue.rho = rho_;
    // Canonical-bytes order: independent of the order (and of any global
    // colour relabelling) of the input views.
    std::vector<std::size_t> order(orbits_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    // Elementwise instead of vector::operator< only to dodge GCC 12's
    // -Wstringop-overread false positive on memcmp-lowered byte compares.
    const auto bytes_less = [](const std::vector<std::uint8_t>& a,
                               const std::vector<std::uint8_t>& b) {
      const std::size_t n = std::min(a.size(), b.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i]) return a[i] < b[i];
      }
      return a.size() < b.size();
    };
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return bytes_less(orbits_[a].canonical, orbits_[b].canonical);
    });
    catalogue.offsets.push_back(0);
    for (const std::size_t i : order) {
      Orbit& orbit = orbits_[i];
      std::vector<ColourPerm> present_cosets;
      for (std::size_t j = 0; j < orbit.cosets.size(); ++j) {
        if (orbit.present[j]) present_cosets.push_back(orbit.cosets[j]);
      }
      catalogue.offsets.push_back(catalogue.offsets.back() +
                                  static_cast<std::int64_t>(present_cosets.size()));
      catalogue.reps.push_back(std::move(orbit.rep));
      catalogue.stabilisers.push_back(std::move(orbit.stabiliser));
      catalogue.cosets.push_back(std::move(present_cosets));
    }
    return catalogue;
  }

 private:
  struct Orbit {
    ColourSystem rep;
    std::vector<std::uint8_t> canonical;
    std::vector<ColourPerm> stabiliser;
    std::vector<ColourPerm> cosets;  // all of them, sorted
    std::vector<char> present;
    Orbit(ColourSystem r, std::vector<std::uint8_t> c)
        : rep(std::move(r)), canonical(std::move(c)) {}
  };

  void new_orbit(const ColourSystem& view) {
    const colsys::SerialisedView parsed(buf_);
    std::vector<std::uint8_t> canonical;
    ColourPerm witness;
    parsed.canonicalise(canonical, &witness);
    const colsys::SerialisedView canon_parsed(canonical);
    const int orbit = static_cast<int>(orbits_.size());
    orbits_.emplace_back(view.permuted(witness), canonical);
    Orbit& record = orbits_.back();
    record.stabiliser = canon_parsed.stabiliser();
    // Canonical left-coset representatives, sorted and deduplicated by
    // Lehmer rank (the same order as lexicographic on the image words);
    // sort + unique keeps this O(k! log k!) rather than a quadratic scan.
    std::vector<std::pair<std::uint32_t, ColourPerm>> ranked;
    ranked.reserve(perms_.size());
    for (const ColourPerm& sigma : perms_) {
      ColourPerm rep = colsys::min_coset_rep(sigma, record.stabiliser);
      ranked.emplace_back(colsys::perm_rank(rep), std::move(rep));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    ranked.erase(std::unique(ranked.begin(), ranked.end(),
                             [](const auto& a, const auto& b) { return a.first == b.first; }),
                 ranked.end());
    std::vector<ColourPerm> cosets;
    cosets.reserve(ranked.size());
    for (auto& [rank, rep] : ranked) cosets.push_back(std::move(rep));
    record.present.assign(cosets.size(), 0);
    // Pre-generate every member's serialisation for O(1) later folding.
    std::vector<std::uint8_t> member;
    for (std::size_t j = 0; j < cosets.size(); ++j) {
      member.clear();
      canon_parsed.serialise(cosets[j], member);
      members_.emplace(std::move(member), std::make_pair(orbit, static_cast<int>(j)));
      member = {};
    }
    record.cosets = std::move(cosets);
  }

  int k_, d_, rho_;
  std::vector<ColourPerm> perms_;
  std::vector<Orbit> orbits_;
  std::unordered_map<std::vector<std::uint8_t>, std::pair<int, int>,
                     colsys::SerialisationHash>
      members_;
  std::vector<std::uint8_t> buf_;
};

/// Rebuilds a ColourSystem from its serialisation (recursive descent over
/// the [k] + preorder node-segment format).  The orderly generator hands
/// out canonical bytes only, so this is the whole rep materialisation.
ColourSystem view_from_bytes(int k, const std::vector<std::uint8_t>& bytes) {
  ColourSystem view(k, colsys::kExactRadius);
  std::size_t pos = 1;  // bytes[0] is the k byte
  std::vector<Colour> cols;
  const auto rec = [&](auto&& self, colsys::NodeId node) -> void {
    const std::uint8_t head = bytes.at(pos++);
    if (head == 0xff) return;  // leaf by truncation
    cols.clear();
    for (int i = 0; i < head; ++i) cols.push_back(bytes.at(pos++));
    std::vector<colsys::NodeId> kids;
    kids.reserve(cols.size());
    for (const Colour c : cols) kids.push_back(view.add_child(node, c));
    for (const colsys::NodeId kid : kids) self(self, kid);
  };
  rec(rec, ColourSystem::root());
  return view;
}

/// Canonical left-coset representatives of `stabiliser` over the whole of
/// S_k, sorted and deduplicated by Lehmer rank — the full member list of
/// one orbit.  (Orderly generation sees the full catalogue by definition,
/// so unlike the replay-fold there is no `present` subset to track.)
std::vector<ColourPerm> all_cosets(const std::vector<ColourPerm>& perms,
                                   const std::vector<ColourPerm>& stabiliser) {
  std::vector<std::pair<std::uint32_t, ColourPerm>> ranked;
  ranked.reserve(perms.size());
  for (const ColourPerm& sigma : perms) {
    ColourPerm rep = colsys::min_coset_rep(sigma, stabiliser);
    ranked.emplace_back(colsys::perm_rank(rep), std::move(rep));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ranked.erase(std::unique(ranked.begin(), ranked.end(),
                           [](const auto& a, const auto& b) { return a.first == b.first; }),
               ranked.end());
  std::vector<ColourPerm> cosets;
  cosets.reserve(ranked.size());
  for (auto& [rank, rep] : ranked) cosets.push_back(std::move(rep));
  return cosets;
}

}  // namespace

OrbitGenStats orderly_orbit_reps(int k, int d, int rho,
                                 const std::function<bool(OrderlyRep&&)>& fn) {
  if (d < 1 || d > k) throw std::invalid_argument("orderly_orbit_reps: need 1 <= d <= k");
  if (rho < 1) throw std::invalid_argument("orderly_orbit_reps: need rho >= 1");
  if (k > colsys::kMaxOrbitColours) {
    throw std::invalid_argument("orderly_orbit_reps: k too large for the orbit machinery");
  }
  // Per-node colour-set options, exactly as in for_each_view: assigning
  // them in the skeleton's preorder makes the identity serialisation grow
  // as a literal byte prefix, and walking each option list in its ascending
  // order emits the surviving (canonical) views in ascending lexicographic
  // byte order — already the OrbitCatalogue rep order, no sort needed.
  std::vector<std::vector<Colour>> root_options;
  subsets(k, d, gk::kNoColour, root_options);
  std::vector<std::vector<std::vector<Colour>>> child_options(static_cast<std::size_t>(k) + 1);
  for (Colour p = 1; p <= k; ++p) {
    std::vector<std::vector<Colour>> with;
    subsets(k, d, p, with);
    for (auto& s : with) {
      s.erase(std::remove(s.begin(), s.end(), p), s.end());
      child_options[p].push_back(std::move(s));
    }
  }
  double fact = 1.0;
  for (int i = 2; i <= k; ++i) fact *= static_cast<double>(i);

  colsys::SerialisedView skeleton(k, d, rho);
  const std::vector<std::int32_t>& order = skeleton.internal_preorder();
  std::vector<Colour> pcolour(static_cast<std::size_t>(skeleton.node_count()), gk::kNoColour);

  OrbitGenStats stats;
  bool stopped = false;
  const auto dfs = [&](auto&& self, std::size_t idx) -> void {
    if (idx == order.size()) {
      // Every internal node assigned: the test is exact here, and the tie
      // set of a surviving view is precisely its stabiliser.
      std::vector<ColourPerm> stab;
      if (skeleton.prefix_rejects(&stab)) {
        ++stats.prefixes_rejected;
        return;
      }
      OrderlyRep rep;
      rep.bytes = skeleton.prefix_bytes();
      rep.index = stats.reps_generated++;
      stats.member_views += fact / static_cast<double>(stab.size());
      rep.stabiliser = std::move(stab);
      if (!fn(std::move(rep))) stopped = true;
      return;
    }
    const std::int32_t node = order[idx];
    const Colour parent = pcolour[static_cast<std::size_t>(node)];
    const auto& options = parent == gk::kNoColour ? root_options : child_options[parent];
    const int count = skeleton.child_count_of(node);
    for (const auto& opt : options) {
      skeleton.push_assignment(opt.data());
      // Prefix rejection: if some permutation already beats the assigned
      // bytes, no completion of this subtree can be canonical — the whole
      // augmentation subtree is pruned in one test.  The complete level
      // runs the exact test above instead, so skip the duplicate walk.
      if (idx + 1 < order.size() && skeleton.prefix_rejects()) {
        ++stats.prefixes_rejected;
      } else {
        for (int i = 0; i < count; ++i) {
          pcolour[static_cast<std::size_t>(skeleton.child_node(node, i))] = opt[static_cast<std::size_t>(i)];
        }
        self(self, idx + 1);
      }
      skeleton.pop_assignment();
      if (stopped) return;
    }
  };
  dfs(dfs, 0);
  stats.complete = !stopped;
  return stats;
}

OrbitCatalogue enumerate_orbits(int k, int d, int rho, int max_views, OrbitGenStats* stats) {
  // The guard is the closed-form Burnside census of *orbits* — reps
  // generated — not raw views: the orderly path never materialises a
  // non-canonical view, so the raw count no longer bounds anything.
  const OrbitCensus census = orbit_census(k, d, rho);
  if (census.orbits > static_cast<double>(max_views)) {
    throw std::runtime_error("enumerate_orbits: orbit catalogue exceeds max_views");
  }
  OrbitCatalogue catalogue;
  catalogue.k = k;
  catalogue.d = d;
  catalogue.rho = rho;
  catalogue.reps.reserve(static_cast<std::size_t>(census.orbits));
  catalogue.stabilisers.reserve(static_cast<std::size_t>(census.orbits));
  catalogue.cosets.reserve(static_cast<std::size_t>(census.orbits));
  catalogue.offsets.reserve(static_cast<std::size_t>(census.orbits) + 1);
  catalogue.offsets.push_back(0);
  const std::vector<ColourPerm> perms = colsys::all_perms(k);
  const OrbitGenStats gen = orderly_orbit_reps(k, d, rho, [&](OrderlyRep&& rep) {
    catalogue.reps.push_back(view_from_bytes(k, rep.bytes));
    std::vector<ColourPerm> cosets = all_cosets(perms, rep.stabiliser);
    catalogue.offsets.push_back(catalogue.offsets.back() +
                                static_cast<std::int64_t>(cosets.size()));
    catalogue.cosets.push_back(std::move(cosets));
    catalogue.stabilisers.push_back(std::move(rep.stabiliser));
    return true;
  });
  // A generation bug would silently drop orbits and flip UNSAT verdicts;
  // the census is exact and independent, so disagreeing with it is fatal.
  if (static_cast<double>(catalogue.orbit_count()) != census.orbits ||
      static_cast<double>(catalogue.view_count()) != census.views) {
    throw std::logic_error(
        "enumerate_orbits: orderly generation disagrees with the Burnside census");
  }
  if (stats != nullptr) *stats = gen;
  return catalogue;
}

OrbitCatalogue reduce_catalogue(const ViewCatalogue& catalogue) {
  OrbitBuilder builder(catalogue.k, catalogue.d, catalogue.rho);
  builder.reserve(catalogue.views.size());
  for (const ColourSystem& view : catalogue.views) builder.add(view);
  return builder.finish();
}

ViewCatalogue expand_catalogue(const OrbitCatalogue& catalogue) {
  ViewCatalogue out;
  out.k = catalogue.k;
  out.d = catalogue.d;
  out.rho = catalogue.rho;
  out.views.reserve(static_cast<std::size_t>(catalogue.view_count()));
  for (int o = 0; o < catalogue.orbit_count(); ++o) {
    for (const ColourPerm& sigma : catalogue.cosets[static_cast<std::size_t>(o)]) {
      out.views.push_back(catalogue.reps[static_cast<std::size_t>(o)].permuted(sigma));
    }
  }
  return out;
}

std::vector<CompatiblePair> compatible_pairs(const OrbitCatalogue& catalogue) {
  // The raw algorithm interns two half-trees per (view, colour) and buckets
  // by (remainder id, colour).  At orbit level a member (o, σ) is σ·rep, so
  // its half along c is σ·half(rep, σ⁻¹(c)) — i.e. (σ ∘ w⁻¹)·H where H is
  // the half's orbit-canonical form and w its witness.  Identity of halves
  // is therefore (H's intern id, the left coset of the lift modulo
  // Stab(H)): serialisation and canonisation run once per (rep, colour),
  // and every member key is a handful of permutation compositions.
  const int k = catalogue.k;
  const int rho = catalogue.rho;
  const int orbit_count = catalogue.orbit_count();
  const std::int64_t n = catalogue.view_count();
  if (n > std::numeric_limits<std::int32_t>::max()) {
    throw std::invalid_argument("compatible_pairs: orbit catalogue too large to expand");
  }
  std::uint64_t fact = 1;
  for (int i = 2; i <= k; ++i) fact *= static_cast<std::uint64_t>(i);

  colsys::CanonicalStore half_store;
  const std::vector<ColourPerm> perms = colsys::all_perms(k);  // rank order
  // Per half id: a k!-entry table folding any permutation's rank to the
  // rank of its canonical left-coset representative modulo Stab(H), built
  // once per distinct half (there are few).  The member sweep below is
  // then one O(k²) rank per (member, colour, half) plus a table lookup.
  std::vector<std::vector<std::uint32_t>> coset_canon;
  struct HalfRef {
    colsys::ViewId id = colsys::kNullView;
    std::uint8_t lift[colsys::kMaxOrbitColours + 1] = {};  // half == lift · canonical_half
  };
  const auto make_ref = [&](const std::vector<std::uint8_t>& bytes) {
    HalfRef ref;
    std::vector<std::uint8_t> canonical;
    ColourPerm witness;
    colsys::SerialisedView(bytes).canonicalise(canonical, &witness);
    ref.id = half_store.intern(canonical);
    if (static_cast<std::size_t>(ref.id) == coset_canon.size()) {
      const std::vector<ColourPerm> stab = colsys::serialisation_stabiliser(canonical);
      std::vector<std::uint32_t> table(fact);
      for (std::uint32_t r = 0; r < fact; ++r) {
        std::uint32_t best = ~std::uint32_t{0};
        for (const ColourPerm& s : stab) {
          best = std::min(best, colsys::perm_rank(colsys::compose_perm(perms[r], s)));
        }
        table[r] = best;
      }
      coset_canon.push_back(std::move(table));
    }
    const ColourPerm lift = colsys::inverse_perm(witness);
    for (Colour c = 1; c <= k; ++c) ref.lift[c] = lift[c];
    return ref;
  };
  // Per (orbit, colour): the two half references of the representative.
  std::vector<HalfRef> across_ref(static_cast<std::size_t>(orbit_count) * k);
  std::vector<HalfRef> remainder_ref(static_cast<std::size_t>(orbit_count) * k);
  std::vector<std::uint8_t> buf;
  for (int o = 0; o < orbit_count; ++o) {
    const ColourSystem& rep = catalogue.reps[static_cast<std::size_t>(o)];
    for (Colour a = 1; a <= k; ++a) {
      const colsys::NodeId child = rep.child(ColourSystem::root(), a);
      if (child == colsys::kNullNode) continue;
      const std::size_t slot = static_cast<std::size_t>(o) * k + (a - 1);
      buf.clear();
      rep.serialize_subtree_into(child, gk::kNoColour, rho - 1, buf);
      across_ref[slot] = make_ref(buf);
      buf.clear();
      rep.serialize_subtree_into(ColourSystem::root(), a, rho - 1, buf);
      remainder_ref[slot] = make_ref(buf);
    }
  }

  // Member sweep: encode each (member, colour) half as
  // (half id) * k! + canonical coset rank of σ ∘ lift — the member's half
  // identity, mirroring the raw TransformCache of interned ids.  The rank
  // of the composition is computed straight off the image bytes (O(k²)
  // integer work, no allocation); the stabiliser fold is the table lookup.
  const auto encode = [&](const HalfRef& ref, const Colour* sigma) {
    std::uint8_t m[colsys::kMaxOrbitColours];
    for (int i = 0; i < k; ++i) m[i] = sigma[ref.lift[i + 1]];
    std::uint32_t rank = 0;
    for (int i = 0; i < k; ++i) {
      std::uint32_t smaller = 0;
      for (int j = i + 1; j < k; ++j) {
        if (m[j] < m[i]) ++smaller;
      }
      rank = rank * static_cast<std::uint32_t>(k - i) + smaller;
    }
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(ref.id)) * fact +
           coset_canon[static_cast<std::size_t>(ref.id)][rank];
  };
  const auto key = [](std::int32_t rem, std::int32_t acr, Colour c) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rem)) << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(acr)) << 8) |
           static_cast<std::uint64_t>(c);
  };
  // Dense ids for the (half, coset) encodings: the emit loop then works on
  // the same compact int32 layout as the raw pipeline's TransformCache.
  std::unordered_map<std::uint64_t, std::int32_t> dense;
  const auto densify = [&](std::uint64_t enc) {
    const auto [it, inserted] = dense.try_emplace(enc, static_cast<std::int32_t>(dense.size()));
    return it->second;
  };
  std::vector<std::int32_t> across_enc(static_cast<std::size_t>(n) * k, -1);
  std::vector<std::int32_t> remainder_enc(static_cast<std::size_t>(n) * k, -1);
  std::unordered_map<std::uint64_t, std::vector<int>> by_halves;
  std::int64_t v = 0;
  Colour sigma_inv[colsys::kMaxOrbitColours + 1];
  for (int o = 0; o < orbit_count; ++o) {
    for (const ColourPerm& sigma : catalogue.cosets[static_cast<std::size_t>(o)]) {
      for (Colour c = 1; c <= k; ++c) sigma_inv[sigma[c]] = c;
      for (Colour c = 1; c <= k; ++c) {
        const Colour a = sigma_inv[c];
        const std::size_t rep_slot = static_cast<std::size_t>(o) * k + (a - 1);
        if (across_ref[rep_slot].id == colsys::kNullView) continue;
        const std::size_t slot = static_cast<std::size_t>(v) * k + (c - 1);
        const std::int32_t acr = densify(encode(across_ref[rep_slot], sigma.data()));
        const std::int32_t rem = densify(encode(remainder_ref[rep_slot], sigma.data()));
        across_enc[slot] = acr;
        remainder_enc[slot] = rem;
        by_halves[key(rem, acr, c)].push_back(static_cast<int>(v));
      }
      ++v;
    }
  }
  std::vector<CompatiblePair> out;
  for (int a = 0; a < static_cast<int>(n); ++a) {
    for (Colour c = 1; c <= k; ++c) {
      const std::size_t slot = static_cast<std::size_t>(a) * k + (c - 1);
      const std::int32_t ha = across_enc[slot];
      if (ha < 0) continue;
      const std::int32_t want = remainder_enc[slot];
      const auto it = by_halves.find(key(ha, want, c));
      if (it == by_halves.end()) continue;
      // See the raw index above: the re-check keeps matches exact under
      // any 64-bit key aliasing.
      const auto& bucket = it->second;
      for (auto bi = std::lower_bound(bucket.begin(), bucket.end(), a); bi != bucket.end();
           ++bi) {
        const std::size_t bslot = static_cast<std::size_t>(*bi) * k + (c - 1);
        if (remainder_enc[bslot] == ha && across_enc[bslot] == want) {
          out.push_back({a, *bi, c});
        }
      }
    }
  }
  return out;
}

}  // namespace dmm::nbhd
