#include "nbhd/views.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace dmm::nbhd {

namespace {

/// All size-`count` subsets of [k] that contain `forced` (or any subsets
/// if forced == kNoColour).
void subsets(int k, int count, Colour forced, std::vector<std::vector<Colour>>& out) {
  std::vector<Colour> pool;
  for (Colour c = 1; c <= k; ++c) {
    if (c != forced) pool.push_back(c);
  }
  const int pick = forced == gk::kNoColour ? count : count - 1;
  if (pick < 0 || pick > static_cast<int>(pool.size())) return;
  std::vector<int> idx(static_cast<std::size_t>(pick));
  // Standard combination enumeration.
  for (int i = 0; i < pick; ++i) idx[static_cast<std::size_t>(i)] = i;
  while (true) {
    std::vector<Colour> chosen;
    if (forced != gk::kNoColour) chosen.push_back(forced);
    for (int i : idx) chosen.push_back(pool[static_cast<std::size_t>(i)]);
    std::sort(chosen.begin(), chosen.end());
    out.push_back(std::move(chosen));
    // Advance.
    int i = pick - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] ==
                         static_cast<int>(pool.size()) - pick + i) {
      --i;
    }
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < pick; ++j) {
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

/// Recursively grows every completion of the partial view below `node`.
void expand(std::vector<ColourSystem>& frontier, int k, int d, int rho, int max_views) {
  // Work queue of (tree, node to expand) is implicit: we expand trees
  // breadth-first by depth level.
  for (int depth = 0; depth < rho; ++depth) {
    std::vector<ColourSystem> next;
    for (const ColourSystem& tree : frontier) {
      // Nodes at this depth, each picks its child colour set; the cross
      // product of choices per node.
      std::vector<colsys::NodeId> level;
      for (colsys::NodeId v : tree.nodes_up_to(depth)) {
        if (tree.depth(v) == depth) level.push_back(v);
      }
      // Choices per node: subsets of child colours.
      std::vector<std::vector<std::vector<Colour>>> options(level.size());
      for (std::size_t i = 0; i < level.size(); ++i) {
        const Colour parent_colour = tree.parent_colour(level[i]);
        std::vector<std::vector<Colour>> sets;
        if (depth == 0) {
          subsets(k, d, gk::kNoColour, sets);
        } else {
          // d-1 children: any (d-1)-subset of [k] - parent colour.
          std::vector<std::vector<Colour>> with;
          subsets(k, d, parent_colour, with);
          for (auto& s : with) {
            s.erase(std::remove(s.begin(), s.end(), parent_colour), s.end());
            sets.push_back(std::move(s));
          }
        }
        options[i] = std::move(sets);
      }
      // Cross product.
      std::vector<std::size_t> pick(level.size(), 0);
      while (true) {
        ColourSystem grown = tree;
        for (std::size_t i = 0; i < level.size(); ++i) {
          for (Colour c : options[i][pick[i]]) grown.add_child(level[i], c);
        }
        next.push_back(std::move(grown));
        if (static_cast<int>(next.size()) > max_views) {
          throw std::runtime_error("enumerate_views: catalogue exceeds max_views");
        }
        // Advance the mixed-radix counter.
        std::size_t i = 0;
        while (i < level.size() && ++pick[i] == options[i].size()) {
          pick[i] = 0;
          ++i;
        }
        if (i == level.size()) break;
      }
    }
    frontier = std::move(next);
  }
}

}  // namespace

ViewCatalogue enumerate_views(int k, int d, int rho, int max_views) {
  if (d < 1 || d > k) throw std::invalid_argument("enumerate_views: need 1 <= d <= k");
  if (rho < 1) throw std::invalid_argument("enumerate_views: need rho >= 1");
  ViewCatalogue catalogue;
  catalogue.k = k;
  catalogue.d = d;
  catalogue.rho = rho;

  std::vector<ColourSystem> frontier{ColourSystem(k, colsys::kExactRadius)};
  expand(frontier, k, d, rho, max_views);

  // Canonical dedup (choice order is canonical already, but be safe).
  std::set<std::vector<std::uint8_t>> seen;
  for (ColourSystem& view : frontier) {
    if (seen.insert(view.serialize(rho)).second) {
      catalogue.views.push_back(std::move(view));
    }
  }
  return catalogue;
}

bool c_compatible(const ColourSystem& a, const ColourSystem& b, Colour c, int rho) {
  const colsys::NodeId ac = a.child(ColourSystem::root(), c);
  const colsys::NodeId bc = b.child(ColourSystem::root(), c);
  if (ac == colsys::kNullNode || bc == colsys::kNullNode) return false;
  // A's half across c, to depth rho-1: re-root at the c-child and drop the
  // branch leading back (colour c from the new root).
  const ColourSystem a_across = a.rerooted(ac).pruned(c).restricted(rho - 1);
  const ColourSystem b_remainder = b.pruned(c).restricted(rho - 1);
  if (!ColourSystem::equal_to_radius(a_across, b_remainder, rho - 1)) return false;
  const ColourSystem b_across = b.rerooted(bc).pruned(c).restricted(rho - 1);
  const ColourSystem a_remainder = a.pruned(c).restricted(rho - 1);
  return ColourSystem::equal_to_radius(b_across, a_remainder, rho - 1);
}

std::vector<CompatiblePair> compatible_pairs(const ViewCatalogue& catalogue) {
  // Hash the two "halves" of every (view, colour): (A, B, c) is compatible
  // iff across(A, c) == remainder(B, c) and across(B, c) == remainder(A, c),
  // so bucketing by remainder keys turns the quadratic scan into lookups.
  const int rho = catalogue.rho;
  struct Halves {
    std::vector<std::uint8_t> across;     // behind the c-edge, depth rho-1
    std::vector<std::uint8_t> remainder;  // view minus its c-branch, depth rho-1
    bool has_colour = false;
  };
  std::vector<std::vector<Halves>> halves(static_cast<std::size_t>(catalogue.size()));
  std::map<std::pair<Colour, std::vector<std::uint8_t>>, std::vector<int>> by_remainder;
  for (int a = 0; a < catalogue.size(); ++a) {
    auto& mine = halves[static_cast<std::size_t>(a)];
    mine.resize(static_cast<std::size_t>(catalogue.k) + 1);
    const ColourSystem& view = catalogue.views[static_cast<std::size_t>(a)];
    for (Colour c = 1; c <= catalogue.k; ++c) {
      const colsys::NodeId child = view.child(ColourSystem::root(), c);
      if (child == colsys::kNullNode) continue;
      Halves& h = mine[c];
      h.has_colour = true;
      h.across = view.rerooted(child).pruned(c).restricted(rho - 1).serialize(rho - 1);
      h.remainder = view.pruned(c).restricted(rho - 1).serialize(rho - 1);
      by_remainder[{c, h.remainder}].push_back(a);
    }
  }
  std::vector<CompatiblePair> out;
  for (int a = 0; a < catalogue.size(); ++a) {
    for (Colour c = 1; c <= catalogue.k; ++c) {
      const Halves& ha = halves[static_cast<std::size_t>(a)][c];
      if (!ha.has_colour) continue;
      const auto it = by_remainder.find({c, ha.across});
      if (it == by_remainder.end()) continue;
      for (int b : it->second) {
        if (b < a) continue;  // emit each unordered pair once
        const Halves& hb = halves[static_cast<std::size_t>(b)][c];
        if (hb.across == ha.remainder) out.push_back({a, b, c});
      }
    }
  }
  return out;
}

}  // namespace dmm::nbhd
