// Instance generators for experiments and tests.
//
// Every generator returns a properly edge-coloured graph (checked by
// construction through EdgeColouredGraph::add_edge).
//
// 64-bit audit (ISSUE 4): every size parameter that participates in a
// product (grid width·height, bipartite d², cycle 2m, random-graph n) is
// taken as std::int64_t and validated against the NodeIndex range before
// any arithmetic that could narrow — generators either build the instance
// or throw std::invalid_argument, never silently wrap at 10⁷-scale.
#pragma once

#include <cstdint>
#include <vector>

#include "colsys/colour_system.hpp"
#include "graph/edge_coloured_graph.hpp"
#include "util/rng.hpp"

namespace dmm::graph {

/// A simple path whose i-th edge carries colours[i].
EdgeColouredGraph path_graph(int k, const std::vector<Colour>& colours);

/// §1.2's worst case for the greedy algorithm, generalised to any k >= 2.
///
/// `long_path` is the path with edge colours 1, 2, ..., k (k+1 nodes); on it
/// the greedy algorithm matches the odd colour classes, so the far endpoint
/// `u = k` is matched iff k is odd.  `short_path` is the path with colours
/// 2, ..., k (k nodes); there greedy matches the even classes, so the far
/// endpoint `v = k-1` gets the opposite fate.  The radius-(k-2) views of u
/// and v are identical, hence any algorithm distinguishing them needs at
/// least k-1 rounds — this is the figure below Lemma 1.
struct WorstCase {
  EdgeColouredGraph long_path;   // colours 1..k
  EdgeColouredGraph short_path;  // colours 2..k
  NodeIndex u;                   // far endpoint of long_path
  NodeIndex v;                   // far endpoint of short_path
};
WorstCase worst_case_chain(int k);

/// A 26-node graph in the style of the paper's Figure 1 (k = 4): two
/// interlocking cycles plus pendant edges exercising all four colour
/// classes.
EdgeColouredGraph figure1_graph();

/// Random properly k-edge-coloured graph on n nodes: every colour class is
/// an independent random partial matching; `density` in [0,1] controls how
/// complete each class is.
EdgeColouredGraph random_coloured_graph(std::int64_t n, int k, double density, Rng& rng);

/// The d-dimensional hypercube, edges coloured by dimension (1-based):
/// d-regular, properly d-edge-coloured; colour class 1 is a perfect
/// matching (the trivial d = k case of §1.3).
EdgeColouredGraph hypercube(int dimensions);

/// Complete bipartite K_{d,d} with the canonical d-colouring
/// colour(L_i, R_j) = ((i + j) mod d) + 1: d-regular, every class perfect.
EdgeColouredGraph complete_bipartite(std::int64_t d);

/// An even cycle of length 2m alternating colours c1, c2.
EdgeColouredGraph alternating_cycle(int k, std::int64_t m, Colour c1, Colour c2);

/// A width x height grid, 4-edge-coloured: horizontal edges alternate
/// colours 1/2 with the x parity, vertical edges alternate 3/4 with the y
/// parity.  With wrap = true (requires even width and height) this is the
/// 4-regular torus, whose colour class 1 is a perfect matching — another
/// d = k instance family (§1.3).  The width·height product is computed and
/// validated in 64 bits (grid_graph(65536, 65536) throws, it does not wrap).
EdgeColouredGraph grid_graph(std::int64_t width, std::int64_t height, bool wrap);

/// A star: node 0 is the hub, joined to `leaves` pendant nodes by edges
/// coloured 1..leaves (a proper colouring forces all hub colours distinct,
/// so k = leaves).  Colour is 8-bit in this library, which caps a star at
/// 255 leaves — the maximally skewed instance the model admits; for
/// n ≥ 10⁶ skew use hub_cluster_graph, which tiles many max-degree hubs.
EdgeColouredGraph star_graph(int leaves);

/// The library's large-scale skewed (power-law-style) instance: `hubs`
/// hub nodes, each the centre of its own star of `hub_degree` leaves on
/// colours first_colour..first_colour+hub_degree-1, so
/// n = hubs·(1 + hub_degree) and the degree distribution is two-point
/// {hub_degree, 1} — the adversarial case for node-count partitioning,
/// where a contiguous run of hub rows serialises one worker.  Hubs are
/// nodes 0..hubs-1 (leaves follow, port-major interleaved), so the skew
/// is front-loaded in node order by construction.  k = first_colour +
/// hub_degree − 1 ≤ 255; greedy runs ~k rounds on it, so first_colour
/// tunes round count independently of degree.
EdgeColouredGraph hub_cluster_graph(std::int64_t hubs, int hub_degree, int first_colour);

/// Converts a finite colour system (or a truncation) into a concrete graph;
/// node 0 corresponds to the root e.
EdgeColouredGraph to_graph(const colsys::ColourSystem& system);

}  // namespace dmm::graph
