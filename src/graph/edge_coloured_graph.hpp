// Finite, anonymous, properly edge-coloured graphs (the paper's problem
// instances and network topologies, §1.2).
//
// Node indices exist only as simulation handles: no algorithm in this
// library may branch on them (anonymity).  The initial knowledge of a node
// is exactly the multiset of colours on its incident edges, as in §2.3.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gk/word.hpp"

namespace dmm::graph {

using gk::Colour;
using NodeIndex = std::int32_t;

struct Edge {
  NodeIndex u = 0;
  NodeIndex v = 0;
  Colour colour = gk::kNoColour;
};

class EdgeColouredGraph {
 public:
  /// An empty graph on n nodes with palette [k].
  EdgeColouredGraph(int n, int k);

  /// Bulk construction: takes the whole edge list at once and validates it
  /// in O(m log m) by sorting the half-edge list, instead of add_edge's
  /// O(deg) linear scan per edge — which is O(d²) per node and makes
  /// hub-heavy (star / power-law) instances quadratic to build.  Throws
  /// exactly the same errors as the add_edge path would (bad node index,
  /// self-loop, colour out of range, colour reused at an endpoint,
  /// parallel edge), just not necessarily on the same offending edge.
  EdgeColouredGraph(int n, int k, std::vector<Edge> edges);

  int node_count() const noexcept { return static_cast<int>(adjacency_.size()); }
  int edge_count() const noexcept { return static_cast<int>(edges_.size()); }
  int k() const noexcept { return k_; }

  /// Adds the edge {u, v} with the given colour.  Throws if the colouring
  /// would stop being proper at either endpoint, if u == v, or if the edge
  /// already exists.
  void add_edge(NodeIndex u, NodeIndex v, Colour colour);

  /// Removes the edge {u, v} (given in either orientation; the colour is
  /// whatever the live edge carries).  Throws std::invalid_argument when no
  /// such edge exists.  The colouring stays proper by construction —
  /// removing an edge can only free colours.  Cost: O(deg(u) + deg(v)) on
  /// the adjacency lists plus an O(m) scan of the edge list; both sides
  /// are swap-popped, so edges() order is NOT preserved across removals
  /// (callers indexing into edges() must re-read after a removal).
  void remove_edge(NodeIndex u, NodeIndex v);

  /// Colour of the edge {u, v}, if present (either orientation).
  std::optional<Colour> edge_colour(NodeIndex u, NodeIndex v) const;

  /// Neighbour of v along colour c, if any.
  std::optional<NodeIndex> neighbour(NodeIndex v, Colour c) const;

  /// True iff {u, v} is already an edge (of any colour).
  bool has_edge(NodeIndex u, NodeIndex v) const;

  /// Sorted colours incident to v (the node's entire initial knowledge).
  std::vector<Colour> incident_colours(NodeIndex v) const;

  int degree(NodeIndex v) const;
  int max_degree() const;

  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Checks that no node has two incident edges of the same colour.  Always
  /// true for graphs built through add_edge; exposed for generator tests.
  bool is_properly_coloured() const;

  std::string str() const;

 private:
  struct Half {
    NodeIndex to;
    Colour colour;
  };

  void check_node(NodeIndex v) const;

  int k_;
  std::vector<std::vector<Half>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace dmm::graph
