#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dmm::graph {

EdgeColouredGraph path_graph(int k, const std::vector<Colour>& colours) {
  EdgeColouredGraph g(static_cast<int>(colours.size()) + 1, k);
  for (std::size_t i = 0; i < colours.size(); ++i) {
    g.add_edge(static_cast<NodeIndex>(i), static_cast<NodeIndex>(i + 1), colours[i]);
  }
  return g;
}

WorstCase worst_case_chain(int k) {
  if (k < 2) throw std::invalid_argument("worst_case_chain: k must be >= 2");
  std::vector<Colour> long_colours, short_colours;
  for (int c = 1; c <= k; ++c) long_colours.push_back(static_cast<Colour>(c));
  for (int c = 2; c <= k; ++c) short_colours.push_back(static_cast<Colour>(c));
  WorstCase out{path_graph(k, long_colours), path_graph(k, short_colours),
                static_cast<NodeIndex>(k), static_cast<NodeIndex>(k - 1)};
  return out;
}

EdgeColouredGraph figure1_graph() {
  // A k = 4 instance in the spirit of Figure 1: a 12-cycle alternating
  // colours {1,2} with chords of colours {3,4}, plus an outer layer of
  // pendant paths, so that every colour class is non-trivial and the greedy
  // algorithm takes all three rounds.
  EdgeColouredGraph g(26, 4);
  // Inner 12-cycle, alternating 1/2.
  for (int i = 0; i < 12; ++i) {
    g.add_edge(i, (i + 1) % 12, static_cast<Colour>(i % 2 == 0 ? 1 : 2));
  }
  // Chords of colour 3 across the cycle, and colour 4 "spokes" to an outer
  // ring of pendant nodes 12..23.
  for (int i = 0; i < 12; i += 4) {
    g.add_edge(i, i + 2, 3);
  }
  for (int i = 0; i < 12; ++i) {
    g.add_edge(i, 12 + i, 4);
  }
  // Two extra tail nodes giving colour-3 edges in the outer layer.
  g.add_edge(12, 24, 3);
  g.add_edge(18, 25, 3);
  return g;
}

EdgeColouredGraph random_coloured_graph(int n, int k, double density, Rng& rng) {
  if (density < 0.0 || density > 1.0) {
    throw std::invalid_argument("random_coloured_graph: density must be in [0,1]");
  }
  EdgeColouredGraph g(n, k);
  std::vector<NodeIndex> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (Colour c = 1; c <= k; ++c) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (int i = 0; i + 1 < n; i += 2) {
      // Two colour classes may randomly propose the same pair; simple
      // graphs take it once.
      if (rng.chance(density) && !g.has_edge(order[static_cast<std::size_t>(i)],
                                             order[static_cast<std::size_t>(i + 1)])) {
        g.add_edge(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(i + 1)], c);
      }
    }
  }
  return g;
}

EdgeColouredGraph hypercube(int dimensions) {
  if (dimensions < 1 || dimensions > 20) {
    throw std::invalid_argument("hypercube: dimensions must be in [1,20]");
  }
  const int n = 1 << dimensions;
  EdgeColouredGraph g(n, dimensions);
  for (int v = 0; v < n; ++v) {
    for (int dim = 0; dim < dimensions; ++dim) {
      const int u = v ^ (1 << dim);
      if (v < u) g.add_edge(v, u, static_cast<Colour>(dim + 1));
    }
  }
  return g;
}

EdgeColouredGraph complete_bipartite(int d) {
  if (d < 1) throw std::invalid_argument("complete_bipartite: d must be >= 1");
  EdgeColouredGraph g(2 * d, d);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) {
      g.add_edge(i, d + j, static_cast<Colour>((i + j) % d + 1));
    }
  }
  return g;
}

EdgeColouredGraph alternating_cycle(int k, int m, Colour c1, Colour c2) {
  if (m < 2) throw std::invalid_argument("alternating_cycle: need length >= 4");
  if (c1 == c2) throw std::invalid_argument("alternating_cycle: colours must differ");
  EdgeColouredGraph g(2 * m, k);
  for (int i = 0; i < 2 * m; ++i) {
    g.add_edge(i, (i + 1) % (2 * m), i % 2 == 0 ? c1 : c2);
  }
  return g;
}

EdgeColouredGraph grid_graph(int width, int height, bool wrap) {
  if (width < 2 || height < 1) throw std::invalid_argument("grid_graph: too small");
  if (wrap && (width % 2 != 0 || height % 2 != 0 || height < 2)) {
    throw std::invalid_argument("grid_graph: torus needs even width and height");
  }
  EdgeColouredGraph g(width * height, 4);
  const auto id = [width](int x, int y) { return static_cast<NodeIndex>(y * width + x); };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Horizontal edge to the right: colour 1 when x is even, else 2.
      if (x + 1 < width) {
        g.add_edge(id(x, y), id(x + 1, y), static_cast<Colour>(x % 2 == 0 ? 1 : 2));
      } else if (wrap) {
        g.add_edge(id(x, y), id(0, y), static_cast<Colour>(x % 2 == 0 ? 1 : 2));
      }
      // Vertical edge downwards: colour 3 when y is even, else 4.
      if (y + 1 < height) {
        g.add_edge(id(x, y), id(x, y + 1), static_cast<Colour>(y % 2 == 0 ? 3 : 4));
      } else if (wrap && height > 1) {
        g.add_edge(id(x, y), id(x, 0), static_cast<Colour>(y % 2 == 0 ? 3 : 4));
      }
    }
  }
  return g;
}

EdgeColouredGraph to_graph(const colsys::ColourSystem& system) {
  EdgeColouredGraph g(system.size(), system.k());
  for (colsys::NodeId v = 1; v < system.size(); ++v) {
    g.add_edge(static_cast<NodeIndex>(system.parent(v)), static_cast<NodeIndex>(v),
               system.parent_colour(v));
  }
  return g;
}

}  // namespace dmm::graph
