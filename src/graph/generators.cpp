#include "graph/generators.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace dmm::graph {

namespace {

/// Validates an (already 64-bit) node count against the NodeIndex range and
/// narrows it.  Centralised so every generator fails the same way instead
/// of wrapping: at 10⁷-scale the products below are legitimate, it is the
/// silent truncation to 32 bits that was the latent bug.
NodeIndex checked_node_count(std::int64_t n, const char* who) {
  if (n < 0 || n > static_cast<std::int64_t>(std::numeric_limits<NodeIndex>::max())) {
    throw std::invalid_argument(std::string(who) +
                                ": node count does not fit a 32-bit NodeIndex (got " +
                                std::to_string(n) + ")");
  }
  return static_cast<NodeIndex>(n);
}

/// Same guard for edge counts (edges_ is indexed through int edge_count()).
void check_edge_count(std::int64_t m, const char* who) {
  if (m < 0 || m > static_cast<std::int64_t>(std::numeric_limits<int>::max())) {
    throw std::invalid_argument(std::string(who) +
                                ": edge count does not fit 32 bits (got " +
                                std::to_string(m) + ")");
  }
}

/// Bounds one factor of a node/edge-count product to the NodeIndex range
/// *before* the multiply: two factors ≤ 2³¹ multiply to ≤ 2⁶² < INT64_MAX,
/// so the subsequent int64 product can never itself overflow (signed
/// overflow is UB — the guard must not commit the crime it polices).
std::int64_t checked_dimension(std::int64_t value, const char* who) {
  if (value < 0 || value > static_cast<std::int64_t>(std::numeric_limits<NodeIndex>::max())) {
    throw std::invalid_argument(std::string(who) + ": dimension out of range (got " +
                                std::to_string(value) + ")");
  }
  return value;
}

}  // namespace

EdgeColouredGraph path_graph(int k, const std::vector<Colour>& colours) {
  const NodeIndex n =
      checked_node_count(static_cast<std::int64_t>(colours.size()) + 1, "path_graph");
  EdgeColouredGraph g(n, k);
  for (std::size_t i = 0; i < colours.size(); ++i) {
    g.add_edge(static_cast<NodeIndex>(i), static_cast<NodeIndex>(i + 1), colours[i]);
  }
  return g;
}

WorstCase worst_case_chain(int k) {
  if (k < 2) throw std::invalid_argument("worst_case_chain: k must be >= 2");
  std::vector<Colour> long_colours, short_colours;
  for (int c = 1; c <= k; ++c) long_colours.push_back(static_cast<Colour>(c));
  for (int c = 2; c <= k; ++c) short_colours.push_back(static_cast<Colour>(c));
  WorstCase out{path_graph(k, long_colours), path_graph(k, short_colours),
                static_cast<NodeIndex>(k), static_cast<NodeIndex>(k - 1)};
  return out;
}

EdgeColouredGraph figure1_graph() {
  // A k = 4 instance in the spirit of Figure 1: a 12-cycle alternating
  // colours {1,2} with chords of colours {3,4}, plus an outer layer of
  // pendant paths, so that every colour class is non-trivial and the greedy
  // algorithm takes all three rounds.
  EdgeColouredGraph g(26, 4);
  // Inner 12-cycle, alternating 1/2.
  for (int i = 0; i < 12; ++i) {
    g.add_edge(i, (i + 1) % 12, static_cast<Colour>(i % 2 == 0 ? 1 : 2));
  }
  // Chords of colour 3 across the cycle, and colour 4 "spokes" to an outer
  // ring of pendant nodes 12..23.
  for (int i = 0; i < 12; i += 4) {
    g.add_edge(i, i + 2, 3);
  }
  for (int i = 0; i < 12; ++i) {
    g.add_edge(i, 12 + i, 4);
  }
  // Two extra tail nodes giving colour-3 edges in the outer layer.
  g.add_edge(12, 24, 3);
  g.add_edge(18, 25, 3);
  return g;
}

EdgeColouredGraph random_coloured_graph(std::int64_t n, int k, double density, Rng& rng) {
  if (density < 0.0 || density > 1.0) {
    throw std::invalid_argument("random_coloured_graph: density must be in [0,1]");
  }
  const NodeIndex nodes = checked_node_count(n, "random_coloured_graph");
  check_edge_count(static_cast<std::int64_t>(k) * (n / 2), "random_coloured_graph");
  EdgeColouredGraph g(nodes, k);
  std::vector<NodeIndex> order(static_cast<std::size_t>(nodes));
  std::iota(order.begin(), order.end(), 0);
  for (Colour c = 1; c <= k; ++c) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (std::int64_t i = 0; i + 1 < n; i += 2) {
      // Two colour classes may randomly propose the same pair; simple
      // graphs take it once.
      if (rng.chance(density) && !g.has_edge(order[static_cast<std::size_t>(i)],
                                             order[static_cast<std::size_t>(i + 1)])) {
        g.add_edge(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(i + 1)], c);
      }
    }
  }
  return g;
}

EdgeColouredGraph hypercube(int dimensions) {
  if (dimensions < 1 || dimensions > 20) {
    throw std::invalid_argument("hypercube: dimensions must be in [1,20]");
  }
  const int n = 1 << dimensions;
  EdgeColouredGraph g(n, dimensions);
  for (int v = 0; v < n; ++v) {
    for (int dim = 0; dim < dimensions; ++dim) {
      const int u = v ^ (1 << dim);
      if (v < u) g.add_edge(v, u, static_cast<Colour>(dim + 1));
    }
  }
  return g;
}

EdgeColouredGraph complete_bipartite(std::int64_t d) {
  if (d < 1) throw std::invalid_argument("complete_bipartite: d must be >= 1");
  checked_dimension(d, "complete_bipartite");  // 2d and d² now fit int64
  const NodeIndex nodes = checked_node_count(2 * d, "complete_bipartite");
  check_edge_count(d * d, "complete_bipartite");  // d² edges: 64-bit product
  EdgeColouredGraph g(nodes, static_cast<int>(d));
  for (std::int64_t i = 0; i < d; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      g.add_edge(static_cast<NodeIndex>(i), static_cast<NodeIndex>(d + j),
                 static_cast<Colour>((i + j) % d + 1));
    }
  }
  return g;
}

EdgeColouredGraph alternating_cycle(int k, std::int64_t m, Colour c1, Colour c2) {
  if (m < 2) throw std::invalid_argument("alternating_cycle: need length >= 4");
  if (c1 == c2) throw std::invalid_argument("alternating_cycle: colours must differ");
  checked_dimension(m, "alternating_cycle");  // 2m now fits int64
  const NodeIndex nodes = checked_node_count(2 * m, "alternating_cycle");
  EdgeColouredGraph g(nodes, k);
  for (NodeIndex i = 0; i < nodes; ++i) {
    g.add_edge(i, static_cast<NodeIndex>((i + 1) % nodes), i % 2 == 0 ? c1 : c2);
  }
  return g;
}

EdgeColouredGraph grid_graph(std::int64_t width, std::int64_t height, bool wrap) {
  if (width < 2 || height < 1) throw std::invalid_argument("grid_graph: too small");
  if (wrap && (width % 2 != 0 || height % 2 != 0 || height < 2)) {
    throw std::invalid_argument("grid_graph: torus needs even width and height");
  }
  // width·height in 64 bits *before* any narrowing: grid_graph(65536, 65536)
  // used to be a silent int overflow, now it throws.  Each factor is
  // bounded first so the int64 product itself cannot overflow.
  checked_dimension(width, "grid_graph");
  checked_dimension(height, "grid_graph");
  const NodeIndex nodes = checked_node_count(width * height, "grid_graph");
  check_edge_count(2 * static_cast<std::int64_t>(nodes), "grid_graph");  // ≤ 2 edges/node
  EdgeColouredGraph g(nodes, 4);
  const auto id = [width](std::int64_t x, std::int64_t y) {
    return static_cast<NodeIndex>(y * width + x);  // 64-bit product, then narrow
  };
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      // Horizontal edge to the right: colour 1 when x is even, else 2.
      if (x + 1 < width) {
        g.add_edge(id(x, y), id(x + 1, y), static_cast<Colour>(x % 2 == 0 ? 1 : 2));
      } else if (wrap) {
        g.add_edge(id(x, y), id(0, y), static_cast<Colour>(x % 2 == 0 ? 1 : 2));
      }
      // Vertical edge downwards: colour 3 when y is even, else 4.
      if (y + 1 < height) {
        g.add_edge(id(x, y), id(x, y + 1), static_cast<Colour>(y % 2 == 0 ? 3 : 4));
      } else if (wrap && height > 1) {
        g.add_edge(id(x, y), id(x, 0), static_cast<Colour>(y % 2 == 0 ? 3 : 4));
      }
    }
  }
  return g;
}

EdgeColouredGraph star_graph(int leaves) {
  if (leaves < 1 || leaves > 255) {
    // Colour is std::uint8_t: a proper colouring needs `leaves` distinct
    // hub colours, so 255 is the model's hard degree cap.
    throw std::invalid_argument("star_graph: leaves must be in [1,255]");
  }
  EdgeColouredGraph g(leaves + 1, leaves);
  for (int i = 0; i < leaves; ++i) {
    g.add_edge(0, static_cast<NodeIndex>(1 + i), static_cast<Colour>(i + 1));
  }
  return g;
}

EdgeColouredGraph hub_cluster_graph(std::int64_t hubs, int hub_degree, int first_colour) {
  if (hubs < 1) throw std::invalid_argument("hub_cluster_graph: hubs must be >= 1");
  if (hub_degree < 1) throw std::invalid_argument("hub_cluster_graph: hub_degree must be >= 1");
  if (first_colour < 1 || first_colour + hub_degree - 1 > 255) {
    throw std::invalid_argument(
        "hub_cluster_graph: colours first_colour..first_colour+hub_degree-1 must fit [1,255]");
  }
  checked_dimension(hubs, "hub_cluster_graph");
  const std::int64_t per_hub = static_cast<std::int64_t>(hub_degree) + 1;
  const NodeIndex nodes = checked_node_count(hubs * per_hub, "hub_cluster_graph");
  check_edge_count(hubs * hub_degree, "hub_cluster_graph");
  const int k = first_colour + hub_degree - 1;
  // Hubs first (nodes 0..hubs-1) so the skew sits in one contiguous
  // node-index run; leaves are port-major interleaved after them (hub h's
  // port-j leaf is node hubs + j·hubs + h).  Built through the bulk
  // constructor: add_edge's per-edge properness scan is O(deg) and would
  // make each hub O(d²).
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(hubs) * static_cast<std::size_t>(hub_degree));
  for (std::int64_t h = 0; h < hubs; ++h) {
    for (int j = 0; j < hub_degree; ++j) {
      const std::int64_t leaf = hubs + static_cast<std::int64_t>(j) * hubs + h;
      edges.push_back({static_cast<NodeIndex>(h), static_cast<NodeIndex>(leaf),
                       static_cast<Colour>(first_colour + j)});
    }
  }
  return EdgeColouredGraph(static_cast<int>(nodes), k, std::move(edges));
}

EdgeColouredGraph to_graph(const colsys::ColourSystem& system) {
  EdgeColouredGraph g(system.size(), system.k());
  for (colsys::NodeId v = 1; v < system.size(); ++v) {
    g.add_edge(static_cast<NodeIndex>(system.parent(v)), static_cast<NodeIndex>(v),
               system.parent_colour(v));
  }
  return g;
}

}  // namespace dmm::graph
