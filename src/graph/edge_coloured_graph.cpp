#include "graph/edge_coloured_graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dmm::graph {

EdgeColouredGraph::EdgeColouredGraph(int n, int k) : k_(k) {
  if (n < 0) throw std::invalid_argument("EdgeColouredGraph: negative node count");
  if (k < 1) throw std::invalid_argument("EdgeColouredGraph: k must be >= 1");
  adjacency_.resize(static_cast<std::size_t>(n));
}

EdgeColouredGraph::EdgeColouredGraph(int n, int k, std::vector<Edge> edges)
    : EdgeColouredGraph(n, k) {
  if (edges.size() >= static_cast<std::size_t>(std::numeric_limits<int>::max())) {
    throw std::length_error("EdgeColouredGraph: edge count would exceed 32 bits");
  }
  // Per-edge checks first (cheap, no sort needed).
  for (const Edge& e : edges) {
    check_node(e.u);
    check_node(e.v);
    if (e.u == e.v) throw std::invalid_argument("EdgeColouredGraph: self-loops not allowed");
    if (e.colour < 1 || e.colour > k_) {
      throw std::invalid_argument("EdgeColouredGraph: colour out of range");
    }
  }
  // Properness and simplicity via one sorted half-edge list: a colour
  // reused at a node and a parallel edge both show up as an adjacent
  // duplicate under the right sort key.
  struct Half3 {
    NodeIndex at;
    NodeIndex to;
    Colour colour;
  };
  std::vector<Half3> halves;
  halves.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    halves.push_back({e.u, e.v, e.colour});
    halves.push_back({e.v, e.u, e.colour});
  }
  std::sort(halves.begin(), halves.end(), [](const Half3& a, const Half3& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.colour != b.colour) return a.colour < b.colour;
    return a.to < b.to;
  });
  for (std::size_t i = 1; i < halves.size(); ++i) {
    if (halves[i].at != halves[i - 1].at) continue;
    if (halves[i].colour == halves[i - 1].colour) {
      throw std::logic_error("EdgeColouredGraph: colour already used at node");
    }
    if (halves[i].to == halves[i - 1].to) {
      throw std::logic_error("EdgeColouredGraph: parallel edge");
    }
  }
  // Parallel edges of *different* colours sort apart under (at, colour);
  // re-check under (at, to).
  std::sort(halves.begin(), halves.end(), [](const Half3& a, const Half3& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.to < b.to;
  });
  for (std::size_t i = 1; i < halves.size(); ++i) {
    if (halves[i].at == halves[i - 1].at && halves[i].to == halves[i - 1].to) {
      throw std::logic_error("EdgeColouredGraph: parallel edge");
    }
  }
  // Adjacency in one pass with exact per-node reserves (add_edge's
  // push_back growth doubles allocations on hub rows).
  std::vector<std::size_t> deg(adjacency_.size(), 0);
  for (const Half3& h : halves) ++deg[static_cast<std::size_t>(h.at)];
  for (std::size_t v = 0; v < adjacency_.size(); ++v) adjacency_[v].reserve(deg[v]);
  for (const Edge& e : edges) {
    adjacency_[static_cast<std::size_t>(e.u)].push_back({e.v, e.colour});
    adjacency_[static_cast<std::size_t>(e.v)].push_back({e.u, e.colour});
  }
  edges_ = std::move(edges);
}

void EdgeColouredGraph::check_node(NodeIndex v) const {
  if (v < 0 || v >= node_count()) throw std::out_of_range("EdgeColouredGraph: bad node index");
}

void EdgeColouredGraph::add_edge(NodeIndex u, NodeIndex v, Colour colour) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("EdgeColouredGraph: self-loops not allowed");
  if (colour < 1 || colour > k_) throw std::invalid_argument("EdgeColouredGraph: colour out of range");
  for (const Half& h : adjacency_[u]) {
    if (h.colour == colour) throw std::logic_error("EdgeColouredGraph: colour already used at u");
    if (h.to == v) throw std::logic_error("EdgeColouredGraph: parallel edge");
  }
  for (const Half& h : adjacency_[v]) {
    if (h.colour == colour) throw std::logic_error("EdgeColouredGraph: colour already used at v");
  }
  // edge_count() narrows to int; refuse the edge that would wrap it rather
  // than let a 10⁷-scale generator corrupt the count silently.
  if (edges_.size() >= static_cast<std::size_t>(std::numeric_limits<int>::max())) {
    throw std::length_error("EdgeColouredGraph: edge count would exceed 32 bits");
  }
  adjacency_[u].push_back({v, colour});
  adjacency_[v].push_back({u, colour});
  edges_.push_back({u, v, colour});
}

void EdgeColouredGraph::remove_edge(NodeIndex u, NodeIndex v) {
  check_node(u);
  check_node(v);
  const auto drop_half = [this](NodeIndex at, NodeIndex to) {
    auto& halves = adjacency_[static_cast<std::size_t>(at)];
    for (std::size_t i = 0; i < halves.size(); ++i) {
      if (halves[i].to == to) {
        halves[i] = halves.back();
        halves.pop_back();
        return true;
      }
    }
    return false;
  };
  if (!drop_half(u, v)) {
    throw std::invalid_argument("EdgeColouredGraph: remove_edge on a non-edge");
  }
  drop_half(v, u);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) {
      edges_[i] = edges_.back();
      edges_.pop_back();
      return;
    }
  }
  throw std::logic_error("EdgeColouredGraph: adjacency/edge-list mismatch");
}

std::optional<Colour> EdgeColouredGraph::edge_colour(NodeIndex u, NodeIndex v) const {
  check_node(u);
  check_node(v);
  for (const Half& h : adjacency_[static_cast<std::size_t>(u)]) {
    if (h.to == v) return h.colour;
  }
  return std::nullopt;
}

bool EdgeColouredGraph::has_edge(NodeIndex u, NodeIndex v) const {
  check_node(u);
  check_node(v);
  for (const Half& h : adjacency_[u]) {
    if (h.to == v) return true;
  }
  return false;
}

std::optional<NodeIndex> EdgeColouredGraph::neighbour(NodeIndex v, Colour c) const {
  check_node(v);
  for (const Half& h : adjacency_[v]) {
    if (h.colour == c) return h.to;
  }
  return std::nullopt;
}

std::vector<Colour> EdgeColouredGraph::incident_colours(NodeIndex v) const {
  check_node(v);
  std::vector<Colour> out;
  out.reserve(adjacency_[v].size());
  for (const Half& h : adjacency_[v]) out.push_back(h.colour);
  std::sort(out.begin(), out.end());
  return out;
}

int EdgeColouredGraph::degree(NodeIndex v) const {
  check_node(v);
  return static_cast<int>(adjacency_[v].size());
}

int EdgeColouredGraph::max_degree() const {
  int d = 0;
  for (NodeIndex v = 0; v < node_count(); ++v) d = std::max(d, degree(v));
  return d;
}

bool EdgeColouredGraph::is_properly_coloured() const {
  for (const auto& halves : adjacency_) {
    std::vector<Colour> colours;
    for (const Half& h : halves) colours.push_back(h.colour);
    std::sort(colours.begin(), colours.end());
    if (std::adjacent_find(colours.begin(), colours.end()) != colours.end()) return false;
  }
  return true;
}

std::string EdgeColouredGraph::str() const {
  std::string out = "graph n=" + std::to_string(node_count()) + " k=" + std::to_string(k_) + "\n";
  for (const Edge& e : edges_) {
    out += "  " + std::to_string(e.u) + " -" + std::to_string(static_cast<int>(e.colour)) + "- " +
           std::to_string(e.v) + "\n";
  }
  return out;
}

}  // namespace dmm::graph
