#include "algo/runner.hpp"

#include <algorithm>
#include <memory>

#include "algo/greedy.hpp"
#include "algo/truncated_greedy.hpp"
#include "algo/zero_round_table.hpp"
#include "local/flooding.hpp"

namespace dmm::algo {

namespace {

EngineRealisation flooded(std::shared_ptr<const local::LocalAlgorithm> algorithm, int k) {
  EngineRealisation r;
  r.name = "flood:" + algorithm->name();
  r.round_bound = algorithm->running_time() + 1;
  r.factory = local::flooding_program_factory(algorithm, k);
  r.heap_factory = [algorithm = std::move(algorithm), k] {
    return std::make_unique<local::FloodingProgram>(algorithm, k);
  };
  return r;
}

}  // namespace

std::vector<EngineRealisation> engine_realisations(int k, int flood_radius_cap) {
  std::vector<EngineRealisation> out;
  // The native message-passing greedy (Lemma 1), always available.
  out.push_back({"greedy", greedy_program_factory(),
                 [] { return std::make_unique<GreedyProgram>(); }, k + 1});

  const auto add_flooded = [&](std::shared_ptr<const local::LocalAlgorithm> algorithm) {
    if (algorithm->running_time() <= flood_radius_cap) {
      out.push_back(flooded(std::move(algorithm), k));
    }
  };

  // Flooding realisations of every LocalAlgorithm in src/algo/.
  add_flooded(std::make_shared<GreedyLocal>(k));
  add_flooded(std::make_shared<FirstColourLocal>(k));
  for (int r = 0; r <= k - 2; ++r) {
    add_flooded(std::make_shared<TruncatedGreedy>(k, r));
  }
  for (const std::uint64_t seed : {7ull, 99ull}) {
    add_flooded(std::make_shared<ArbitraryLocal>(k, std::min(2, std::max(0, k - 1)), seed));
  }
  if (k <= 3) {
    // A few 0-round table algorithms from the Lemma 4 enumeration.
    const std::uint64_t count = zero_round_algorithm_count(k);
    for (std::uint64_t index : {std::uint64_t{0}, count / 2, count - 1}) {
      add_flooded(std::make_shared<ZeroRoundTable>(make_zero_round_algorithm(k, index)));
    }
  }
  return out;
}

local::RunResult run_realisation(local::EngineKind kind, const graph::EdgeColouredGraph& g,
                                 const EngineRealisation& realisation) {
  return local::run(kind, g, realisation.factory, realisation.round_bound);
}

}  // namespace dmm::algo
