#include "algo/cole_vishkin.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmm::algo {

namespace {

/// One Cole–Vishkin step: new colour = 2*i + bit, where i is the lowest bit
/// position at which own and predecessor colours differ.
std::uint64_t cv_step(std::uint64_t own, std::uint64_t pred) {
  const std::uint64_t diff = own ^ pred;
  const int i = diff == 0 ? 0 : __builtin_ctzll(diff);
  const std::uint64_t bit = (own >> i) & 1ull;
  return 2ull * static_cast<std::uint64_t>(i) + bit;
}

}  // namespace

CvResult cv_three_colour_cycle(const std::vector<std::uint64_t>& ids) {
  const std::size_t n = ids.size();
  if (n < 3) throw std::invalid_argument("cv_three_colour_cycle: need n >= 3");
  {
    std::vector<std::uint64_t> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument("cv_three_colour_cycle: identifiers must be unique");
    }
  }
  CvResult result;
  std::vector<std::uint64_t> colour(ids);
  // Halving rounds: stop once the palette is within {0..5}; each round uses
  // only the predecessor's previous colour (one message).
  auto palette_max = [&] { return *std::max_element(colour.begin(), colour.end()); };
  while (palette_max() > 5) {
    std::vector<std::uint64_t> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = cv_step(colour[i], colour[(i + n - 1) % n]);
    }
    colour = std::move(next);
    ++result.cv_rounds;
  }
  // Shift-down elimination of colours 5, 4, 3: each round, the top class
  // re-colours with the smallest value of {0,1,2} unused by its two
  // neighbours (top-class nodes are pairwise non-adjacent: the colouring is
  // proper).
  for (std::uint64_t top = 5; top >= 3; --top) {
    std::vector<std::uint64_t> next = colour;
    for (std::size_t i = 0; i < n; ++i) {
      if (colour[i] != top) continue;
      const std::uint64_t left = colour[(i + n - 1) % n];
      const std::uint64_t right = colour[(i + 1) % n];
      for (std::uint64_t c = 0; c < 3; ++c) {
        if (c != left && c != right) {
          next[i] = c;
          break;
        }
      }
    }
    colour = std::move(next);
    ++result.finish_rounds;
  }
  result.colours.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.colours[i] = static_cast<int>(colour[i]);
  return result;
}

bool is_proper_cycle_colouring(const std::vector<int>& colours) {
  const std::size_t n = colours.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (colours[i] == colours[(i + 1) % n]) return false;
  }
  return true;
}

}  // namespace dmm::algo
