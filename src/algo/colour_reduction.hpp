// Colour reduction in the spirit of Linial / Cole–Vishkin, used for the
// paper's §1.3 discussion: when k ≫ Δ, a maximal matching can be found much
// faster than greedy's k-1 rounds by first shrinking the edge-colour
// palette.
//
// The input edge colours of a properly k-edge-coloured graph form a proper
// k-vertex-colouring of the line graph (maximum degree Δ_L ≤ 2Δ-2).  One
// Linial step re-colours every edge using polynomials over GF(q): encode the
// current label as the coefficient vector of a polynomial p_e of degree
// < t (t = base-q digits of the palette), and let the new label be the pair
// (a, p_e(a)) for an evaluation point a with p_e(a) ≠ p_f(a) for all
// adjacent edges f.  Such a point exists whenever q > Δ_L·(t-1), and the
// palette drops from m to q².  Iterating reaches O(Δ_L²) colours in
// O(log* k) rounds; each step is one communication round (edges exchange
// labels with adjacent edges).
//
// On top of the reduction we provide
//   * edge_colouring_two_delta — proper edge colouring with Δ_L+1 ≤ 2Δ-1
//     colours (§1.1's third bullet), by eliminating one class per round, and
//   * reduced_matching — maximal matching in O(Δ² + log* k) rounds (the
//     library's stand-in for the paper's cited O(Δ + log* k) adaptation of
//     Panconesi–Rizzi; see DESIGN.md "Substitutions").
//
// All round counts are tallied faithfully: one reduction step, one
// elimination step, or one greedy class-step each cost one round (the first
// greedy class is free, Lemma 1).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_coloured_graph.hpp"
#include "local/algorithm.hpp"

namespace dmm::algo {

struct ReductionResult {
  std::vector<std::int64_t> labels;  // per edge (index into g.edges()), 0-based
  std::int64_t palette = 0;          // labels are in [0, palette)
  int rounds = 0;                    // communication rounds spent
};

/// Iterated Linial reduction on the line graph until the palette stops
/// shrinking.  Output palette is O(Δ_L² log² Δ_L) = O(Δ² log² Δ); rounds are
/// O(log* k).
ReductionResult linial_colour_reduction(const graph::EdgeColouredGraph& g);

struct EdgeColouringResult {
  std::vector<std::int64_t> labels;  // proper edge colouring, 0-based
  std::int64_t palette = 0;
  int rounds = 0;
};

/// Proper edge colouring with max(Δ_L+1, 1) ≤ 2Δ-1 colours: Linial reduction
/// followed by one-class-per-round elimination.
EdgeColouringResult edge_colouring_two_delta(const graph::EdgeColouredGraph& g);

struct ReducedMatchingResult {
  std::vector<gk::Colour> outputs;  // per node, paper encoding (§2.4)
  int reduction_rounds = 0;
  int greedy_rounds = 0;
  int total_rounds = 0;
  std::int64_t palette = 0;  // palette the greedy phase ran on
};

/// Maximal matching via palette reduction + greedy over the reduced classes.
/// Rounds: O(Δ² log² Δ + log* k) — independent of k apart from the log* term.
ReducedMatchingResult reduced_matching(const graph::EdgeColouredGraph& g);

}  // namespace dmm::algo
