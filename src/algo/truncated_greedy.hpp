// Deliberately too-fast algorithms: adversary fodder for Theorem 2.
//
// TruncatedGreedy(k, r) runs the greedy process on whatever fits in the
// radius-(r+1) view and answers for the root.  For r >= k-1 it equals the
// real greedy algorithm; for r < k-1 it is a well-defined anonymous
// algorithm that *claims* to beat the lower bound — the paper proves every
// such algorithm must fail on some instance, and the executable adversary
// in src/lower finds one.
//
// ArbitraryLocal is a deterministic pseudo-random function from canonical
// views to M1-valid outputs: it models "an arbitrary algorithm" for
// property tests of the adversary (Theorem 2 quantifies over *all*
// algorithms, so the adversary must defeat these too).
#pragma once

#include <cstdint>

#include "local/algorithm.hpp"

namespace dmm::algo {

using gk::Colour;

class TruncatedGreedy final : public local::LocalAlgorithm {
 public:
  TruncatedGreedy(int k, int r) : k_(k), r_(r) {}
  int running_time() const override { return r_; }
  Colour evaluate(const colsys::ColourSystem& view) const override;
  std::string name() const override {
    return "truncated-greedy(k=" + std::to_string(k_) + ",r=" + std::to_string(r_) + ")";
  }

 private:
  int k_;
  int r_;
};

/// Deterministic pseudo-random M1-respecting algorithm: the output for a
/// view is drawn from C(view root) + ⊥ by hashing the canonical view
/// serialisation with the seed.  Same seed => same algorithm.
class ArbitraryLocal final : public local::LocalAlgorithm {
 public:
  ArbitraryLocal(int k, int r, std::uint64_t seed, double unmatched_bias = 0.25)
      : k_(k), r_(r), seed_(seed), unmatched_bias_(unmatched_bias) {}
  int running_time() const override { return r_; }
  Colour evaluate(const colsys::ColourSystem& view) const override;
  std::string name() const override {
    return "arbitrary(k=" + std::to_string(k_) + ",r=" + std::to_string(r_) +
           ",seed=" + std::to_string(seed_) + ")";
  }

 private:
  int k_;
  int r_;
  std::uint64_t seed_;
  double unmatched_bias_;
};

/// "First colour wins": every node with an incident colour-1 edge matches
/// along it; everyone else answers ⊥.  A 0-round algorithm that is correct
/// only on very special instances; another adversary target.
class FirstColourLocal final : public local::LocalAlgorithm {
 public:
  explicit FirstColourLocal(int k) : k_(k) {}
  int running_time() const override { return 0; }
  Colour evaluate(const colsys::ColourSystem& view) const override;
  std::string name() const override { return "first-colour(k=" + std::to_string(k_) + ")"; }

 private:
  int k_;
};

}  // namespace dmm::algo
