#include "algo/zero_round_table.hpp"

#include <bit>
#include <stdexcept>

namespace dmm::algo {

namespace {

std::vector<Colour> mask_colours(int k, unsigned mask) {
  std::vector<Colour> out;
  for (Colour c = 1; c <= k; ++c) {
    if (mask & (1u << (c - 1))) out.push_back(c);
  }
  return out;
}

}  // namespace

ZeroRoundTable::ZeroRoundTable(int k, std::vector<Colour> table)
    : k_(k), table_(std::move(table)) {
  if (k < 1 || k > 16) throw std::invalid_argument("ZeroRoundTable: k out of range");
  if (table_.size() != (1u << k)) throw std::invalid_argument("ZeroRoundTable: table size");
  for (unsigned mask = 0; mask < table_.size(); ++mask) {
    const Colour out = table_[mask];
    if (out == local::kUnmatched) continue;
    if (out > k_ || !(mask & (1u << (out - 1)))) {
      throw std::invalid_argument("ZeroRoundTable: entry violates (M1)");
    }
  }
}

Colour ZeroRoundTable::evaluate(const colsys::ColourSystem& view) const {
  unsigned mask = 0;
  for (Colour c : view.colours_at(colsys::ColourSystem::root())) {
    mask |= 1u << (c - 1);
  }
  return table_[mask];
}

std::string ZeroRoundTable::name() const {
  std::string out = "table0(k=" + std::to_string(k_) + ";";
  for (unsigned mask = 0; mask < table_.size(); ++mask) {
    out += std::to_string(static_cast<int>(table_[mask]));
    if (mask + 1 < table_.size()) out += ",";
  }
  return out + ")";
}

std::uint64_t zero_round_algorithm_count(int k) {
  if (k < 1 || k > 5) {
    throw std::invalid_argument("zero_round_algorithm_count: enumeration sensible for k <= 5");
  }
  std::uint64_t count = 1;
  for (unsigned mask = 0; mask < (1u << k); ++mask) {
    count *= static_cast<std::uint64_t>(std::popcount(mask)) + 1;
  }
  return count;
}

ZeroRoundTable make_zero_round_algorithm(int k, std::uint64_t index) {
  std::vector<Colour> table(1u << k, local::kUnmatched);
  for (unsigned mask = 0; mask < (1u << k); ++mask) {
    const std::uint64_t radix = static_cast<std::uint64_t>(std::popcount(mask)) + 1;
    const std::uint64_t digit = index % radix;
    index /= radix;
    if (digit > 0) {
      table[mask] = mask_colours(k, mask)[digit - 1];
    }
  }
  return ZeroRoundTable(k, std::move(table));
}

}  // namespace dmm::algo
