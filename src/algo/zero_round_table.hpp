// Exhaustive enumeration of 0-round algorithms.
//
// A deterministic 0-round algorithm on anonymous edge-coloured graphs is a
// function of the radius-1 view, i.e. of the set of incident colours.  Up
// to (M1) there are exactly  Π_{S ⊆ [k]} (|S| + 1)  such algorithms (each
// view S independently answers ⊥ or one of its colours) — 12 for k = 2,
// 864 for k = 3.  Enumerating them makes Theorem 2's "for every algorithm"
// checkable by brute force at small k: the adversary must refute every
// single one (test_exhaustive.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "local/algorithm.hpp"

namespace dmm::algo {

using gk::Colour;

/// A 0-round algorithm given by a table: incident-colour-set -> output.
/// Construction enforces (M1): each entry is ⊥ or a member of its set.
class ZeroRoundTable final : public local::LocalAlgorithm {
 public:
  /// table[mask] is the output for the view whose incident colours are the
  /// set bits of mask (bit c-1 = colour c); there are 2^k entries.
  ZeroRoundTable(int k, std::vector<Colour> table);

  int running_time() const override { return 0; }
  Colour evaluate(const colsys::ColourSystem& view) const override;
  std::string name() const override;

  const std::vector<Colour>& table() const noexcept { return table_; }

 private:
  int k_;
  std::vector<Colour> table_;
};

/// Number of distinct M1-valid 0-round algorithms on palette [k].
std::uint64_t zero_round_algorithm_count(int k);

/// The index-th algorithm in the canonical (mixed-radix) enumeration;
/// index in [0, zero_round_algorithm_count(k)).  For each view-mask the
/// digit 0 means ⊥ and digit i >= 1 means the i-th smallest colour of the
/// mask.
ZeroRoundTable make_zero_round_algorithm(int k, std::uint64_t index);

}  // namespace dmm::algo
