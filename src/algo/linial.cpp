#include "algo/linial.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmm::algo::linial {

bool is_prime(std::int64_t x) {
  if (x < 2) return false;
  for (std::int64_t d = 2; d * d <= x; ++d) {
    if (x % d == 0) return false;
  }
  return true;
}

std::int64_t next_prime(std::int64_t x) {
  while (!is_prime(x)) ++x;
  return x;
}

int digit_count(std::int64_t palette, std::int64_t q) {
  int t = 1;
  std::int64_t reach = q;
  while (reach < palette) {
    reach *= q;
    ++t;
  }
  return t;
}

std::int64_t poly_eval(std::int64_t label, std::int64_t q, int t, std::int64_t a) {
  std::int64_t value = 0;
  std::int64_t power = 1;
  for (int i = 0; i < t; ++i) {
    const std::int64_t coeff = label % q;
    label /= q;
    value = (value + coeff * power) % q;
    power = (power * a) % q;
  }
  return value;
}

namespace {

int max_degree_of(const std::vector<std::vector<int>>& adj) {
  std::size_t d = 0;
  for (const auto& list : adj) d = std::max(d, list.size());
  return static_cast<int>(d);
}

}  // namespace

Reduction reduce(const std::vector<std::vector<int>>& adj, std::vector<std::int64_t> labels,
                 std::int64_t palette) {
  Reduction result{std::move(labels), palette, 0};
  if (result.labels.empty()) return result;
  const int degree = max_degree_of(adj);

  while (true) {
    std::int64_t q = next_prime(std::max<std::int64_t>(2, degree + 1));
    while (q <= static_cast<std::int64_t>(degree) * (digit_count(result.palette, q) - 1)) {
      q = next_prime(q + 1);
    }
    const std::int64_t new_palette = q * q;
    if (new_palette >= result.palette) break;
    const int t = digit_count(result.palette, q);

    std::vector<std::int64_t> next(result.labels.size());
    for (std::size_t v = 0; v < result.labels.size(); ++v) {
      std::int64_t chosen = -1;
      for (std::int64_t a = 0; a < q && chosen < 0; ++a) {
        const std::int64_t mine = poly_eval(result.labels[v], q, t, a);
        bool clash = false;
        for (int u : adj[v]) {
          if (poly_eval(result.labels[static_cast<std::size_t>(u)], q, t, a) == mine) {
            clash = true;
            break;
          }
        }
        if (!clash) chosen = a * q + mine;
      }
      if (chosen < 0) throw std::logic_error("linial::reduce: no evaluation point (bug)");
      next[v] = chosen;
    }
    result.labels = std::move(next);
    result.palette = new_palette;
    ++result.rounds;
  }
  return result;
}

void eliminate_to(const std::vector<std::vector<int>>& adj, Reduction& reduction,
                  std::int64_t target) {
  if (reduction.labels.empty()) {
    reduction.palette = std::min(reduction.palette, std::max<std::int64_t>(target, 1));
    return;
  }
  if (target < max_degree_of(adj) + 1) {
    throw std::invalid_argument("linial::eliminate_to: target below degree+1");
  }
  while (reduction.palette > target) {
    const std::int64_t top = reduction.palette - 1;
    for (std::size_t v = 0; v < reduction.labels.size(); ++v) {
      if (reduction.labels[v] != top) continue;
      std::vector<char> used(static_cast<std::size_t>(target), 0);
      for (int u : adj[v]) {
        const std::int64_t lu = reduction.labels[static_cast<std::size_t>(u)];
        if (lu < target) used[static_cast<std::size_t>(lu)] = 1;
      }
      std::int64_t pick = -1;
      for (std::int64_t c = 0; c < target && pick < 0; ++c) {
        if (!used[static_cast<std::size_t>(c)]) pick = c;
      }
      if (pick < 0) throw std::logic_error("linial::eliminate_to: no free colour (bug)");
      reduction.labels[v] = pick;
    }
    --reduction.palette;
    ++reduction.rounds;
  }
}

}  // namespace dmm::algo::linial
