#include "algo/randomized_matching.hpp"

#include <cstdint>
#include <stdexcept>

namespace dmm::algo {

RandomizedMatchingResult randomized_matching(const graph::EdgeColouredGraph& g, Rng& rng) {
  RandomizedMatchingResult result;
  result.outputs.assign(static_cast<std::size_t>(g.node_count()), local::kUnmatched);
  const auto& edges = g.edges();
  std::vector<char> live(edges.size(), 1);
  int remaining = static_cast<int>(edges.size());

  auto blocked = [&](std::size_t i) {
    return result.outputs[static_cast<std::size_t>(edges[i].u)] != local::kUnmatched ||
           result.outputs[static_cast<std::size_t>(edges[i].v)] != local::kUnmatched;
  };

  while (remaining > 0) {
    ++result.rounds;
    // Phase 1: every live edge draws a fresh priority.
    std::vector<std::uint64_t> priority(edges.size(), 0);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (live[i]) {
        priority[i] = static_cast<std::uint64_t>(rng.uniform(0, INT64_MAX));
      }
    }
    // Phase 2: simultaneous decisions — an edge enters iff it is a strict
    // local minimum among live edges sharing an endpoint.
    std::vector<std::size_t> winners;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!live[i]) continue;
      bool is_min = true;
      for (std::size_t j = 0; j < edges.size() && is_min; ++j) {
        if (j == i || !live[j]) continue;
        const bool adjacent = edges[i].u == edges[j].u || edges[i].u == edges[j].v ||
                              edges[i].v == edges[j].u || edges[i].v == edges[j].v;
        if (adjacent && priority[j] <= priority[i]) is_min = false;
      }
      if (is_min) winners.push_back(i);
    }
    for (std::size_t i : winners) {
      result.outputs[static_cast<std::size_t>(edges[i].u)] = edges[i].colour;
      result.outputs[static_cast<std::size_t>(edges[i].v)] = edges[i].colour;
    }
    // Phase 3: retire decided edges.
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (live[i] && blocked(i)) {
        live[i] = 0;
        --remaining;
      }
    }
    if (result.rounds > 64 * (g.node_count() + 2)) {
      throw std::runtime_error("randomized_matching: did not converge (bug)");
    }
  }
  return result;
}

}  // namespace dmm::algo
