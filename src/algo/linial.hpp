// Shared core of the Linial-style colour reduction, used by both the
// edge-colour reduction (colour_reduction.cpp) and the (Δ+1)-vertex
// colouring (vertex_colouring.cpp).
//
// One step: encode each label as a polynomial over GF(q) (coefficients =
// base-q digits) and re-label with (a, p(a)) for an evaluation point a
// avoiding all neighbours — possible whenever q > D·(t-1).  The palette
// drops from m to q²; iterating reaches poly(D) in O(log* m) steps.
#pragma once

#include <cstdint>
#include <vector>

namespace dmm::algo::linial {

bool is_prime(std::int64_t x);
std::int64_t next_prime(std::int64_t x);

/// Number of base-q digits needed for labels in [0, palette).
int digit_count(std::int64_t palette, std::int64_t q);

/// Evaluates the polynomial whose coefficients are the base-q digits of
/// `label`, at point a, over GF(q).
std::int64_t poly_eval(std::int64_t label, std::int64_t q, int t, std::int64_t a);

struct Reduction {
  std::vector<std::int64_t> labels;
  std::int64_t palette = 0;
  int rounds = 0;
};

/// Iterates Linial steps on an arbitrary conflict graph (adjacency lists
/// over label indices) until the palette stops shrinking.  `labels` must
/// be a proper colouring of the conflict graph.
Reduction reduce(const std::vector<std::vector<int>>& adj, std::vector<std::int64_t> labels,
                 std::int64_t palette);

/// Eliminates classes one per round down to `target` (requires target >=
/// max degree + 1 of the conflict graph).  Extends `reduction` in place.
void eliminate_to(const std::vector<std::vector<int>>& adj, Reduction& reduction,
                  std::int64_t target);

}  // namespace dmm::algo::linial
