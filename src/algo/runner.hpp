// Engine-runnable realisations of the library's algorithms.
//
// The library has two ways to put an algorithm on a simulation engine
// (local::EngineKind): a hand-written NodeProgram (greedy has one) and the
// generic full-information FloodingProgram (local/flooding.hpp), which
// turns any LocalAlgorithm into a message-passing program.  This registry
// enumerates both, by name, with a safe max_rounds bound — it is what the
// engine-equivalence suite, the CLI and the benches iterate so that every
// algorithm in src/algo/ runs on every engine.
#pragma once

#include <string>
#include <vector>

#include "local/engine.hpp"

namespace dmm::algo {

struct EngineRealisation {
  std::string name;
  local::ProgramSource factory;       // pooled (arena) construction path
  // The same programs built one unique_ptr at a time — the legacy path the
  // pooled one must match bit for bit (tests/test_program_pool.cpp runs
  // every realisation both ways on both engines).
  local::NodeProgramFactory heap_factory;
  int round_bound = 0;  // safe max_rounds for this realisation on palette [k]
};

/// All realisations available on palette [k].  Flooding realisations
/// gather radius-(r+1) views, whose size is exponential in r on dense
/// graphs, so algorithms with running time above `flood_radius_cap` are
/// skipped (pass a larger cap for path-like instances where views stay
/// linear).
std::vector<EngineRealisation> engine_realisations(int k, int flood_radius_cap = 3);

/// Convenience: run one realisation on either engine.
local::RunResult run_realisation(local::EngineKind kind, const graph::EdgeColouredGraph& g,
                                 const EngineRealisation& realisation);

}  // namespace dmm::algo
