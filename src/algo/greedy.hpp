// The greedy maximal matching algorithm (§1.2, Figure 1, Lemma 1).
//
// Step i considers all edges of colour i in parallel; an edge {u, v} of
// colour i joins the matching iff neither endpoint is matched yet.  Step 1
// needs no communication, so the running time is exactly k-1 rounds.
//
// Three equivalent realisations are provided and cross-validated in tests:
//   * greedy_outputs        — centralised reference implementation,
//   * GreedyProgram         — message-passing state machine for run_sync,
//   * GreedyLocal           — the §2.3 functional form (input: radius-k view),
//     which is what the lower-bound adversary interrogates.
#pragma once

#include <memory>
#include <vector>

#include "local/algorithm.hpp"
#include "local/engine.hpp"

namespace dmm::algo {

using gk::Colour;

/// Reference implementation on a whole instance.
std::vector<Colour> greedy_outputs(const graph::EdgeColouredGraph& g);

/// Reference implementation on a colour system (tree instance); processes
/// the parent edges of all nodes, colours in increasing order.  Exact on
/// every node whose greedy fate is determined inside the truncation; callers
/// are responsible for only trusting sufficiently interior nodes.
std::vector<Colour> greedy_outputs(const colsys::ColourSystem& system);

/// Message-passing greedy.  Halts at round c-1 when matched along colour c;
/// an never-matched node halts once its largest incident colour has been
/// resolved.
class GreedyProgram final : public local::NodeProgram {
 public:
  bool init(const std::vector<Colour>& incident) override;
  std::map<Colour, local::Message> send(int round) override;
  bool receive(int round, const std::map<Colour, local::Message>& inbox) override;
  // Allocation-free fast paths for the flat engine; the equivalence suite
  // (tests/test_flat_engine.cpp) pins them to the map-based trio above.
  // init_flat keeps a span over the engine's CSR colour row instead of
  // copying it, so a pooled greedy run performs no per-node allocation at
  // all — this is what opens n = 10⁷ (ISSUE 4 / test_engine_scale).
  bool init_flat(const Colour* incident, int degree) override;
  void send_flat(int round, local::FlatOutbox& out) override;
  bool receive_flat(int round, const local::FlatInbox& in) override;
  Colour output() const override { return output_; }
  // Checkpoint hooks: the whole dynamic state is {matched_, output_} — the
  // incident colours are re-derived by init, and neighbour_matched_ is
  // refreshed before every use.  Two bytes per node.
  void save_state(std::string& out) const override;
  void load_state(std::string_view in) override;

 private:
  bool start();
  bool try_finish(int completed_step);

  // The node's sorted incident colours: a borrowed engine row on the flat
  // path, a private copy (owned_) on the map path.
  const Colour* incident_ = nullptr;
  int degree_ = 0;
  std::vector<Colour> owned_;
  std::vector<char> neighbour_matched_;  // indexed by incident position
  Colour output_ = local::kUnmatched;
  bool matched_ = false;
};

/// Pooled factory for GreedyProgram with the tuned batched path: one
/// contiguous arena block for all n programs.
class GreedyProgramFactory final : public local::ProgramFactory {
 public:
  void make_programs(std::size_t count, local::ProgramPool& pool) const override;
  local::NodeProgram* make_one(local::ProgramPool& pool) const override;
};

/// The pooled greedy source (accepted directly by local::run/run_sync/
/// run_flat).
local::ProgramSource greedy_program_factory();

/// Functional greedy (running time k-1): simulates the greedy process on
/// the radius-k view and reports the root's fate, which the locality
/// argument of §1.2 shows is exact.
class GreedyLocal final : public local::LocalAlgorithm {
 public:
  explicit GreedyLocal(int k) : k_(k) {}
  int running_time() const override { return k_ - 1; }
  Colour evaluate(const colsys::ColourSystem& view) const override;
  std::string name() const override { return "greedy(k=" + std::to_string(k_) + ")"; }

 private:
  int k_;
};

}  // namespace dmm::algo
