#include "algo/two_colour.hpp"

#include <stdexcept>

namespace dmm::algo {

TwoColourResult two_colour_matching(const graph::EdgeColouredGraph& g) {
  if (g.k() > 2) throw std::invalid_argument("two_colour_matching: needs k <= 2");
  TwoColourResult result;
  result.outputs.assign(static_cast<std::size_t>(g.node_count()), local::kUnmatched);
  for (const graph::Edge& e : g.edges()) {
    if (e.colour != 1) continue;
    result.outputs[static_cast<std::size_t>(e.u)] = 1;
    result.outputs[static_cast<std::size_t>(e.v)] = 1;
  }
  for (const graph::Edge& e : g.edges()) {
    if (e.colour != 2) continue;
    if (result.outputs[static_cast<std::size_t>(e.u)] == local::kUnmatched &&
        result.outputs[static_cast<std::size_t>(e.v)] == local::kUnmatched) {
      result.outputs[static_cast<std::size_t>(e.u)] = 2;
      result.outputs[static_cast<std::size_t>(e.v)] = 2;
      result.rounds = 1;  // deciding a colour-2 edge needs one exchange
    } else {
      // A blocked colour-2 edge also needs the exchange to learn it is
      // blocked (the unmatched endpoint must hear the partner's fate).
      result.rounds = 1;
    }
  }
  return result;
}

}  // namespace dmm::algo
