// Cole–Vishkin deterministic coin tossing [4]: 3-colouring a directed cycle
// with unique identifiers in log*(id space) + O(1) rounds.
//
// This is the classic engine behind every "+ log* k" term in the paper's
// §1.1/§1.3 bounds, provided here both as a substrate demonstration
// (experiment E13) and as the inner loop of the library's colour-reduction
// utilities.
#pragma once

#include <cstdint>
#include <vector>

namespace dmm::algo {

struct CvResult {
  std::vector<int> colours;  // per position; values in {0,1,2}
  int cv_rounds = 0;         // bit-trick halving rounds
  int finish_rounds = 0;     // 6 -> 3 shift-down rounds
  int total_rounds() const noexcept { return cv_rounds + finish_rounds; }
};

/// 3-colours the directed cycle whose i-th node has identifier ids[i] and
/// whose successor is position (i+1) mod n.  Identifiers must be unique.
/// Requires n >= 3.
CvResult cv_three_colour_cycle(const std::vector<std::uint64_t>& ids);

/// True iff adjacent positions (cyclically) received distinct colours.
bool is_proper_cycle_colouring(const std::vector<int>& colours);

}  // namespace dmm::algo
