// Maximal (fractional) edge packing and 2-approximate vertex cover in O(Δ)
// rounds (§1.1, citing Åstrand & Suomela [2]).
//
// An edge packing assigns y_e ≥ 0 with Σ_{e ∋ v} y_e ≤ 1 at every node; it
// is maximal if no single y_e can be increased.  The algorithm below is the
// natural anonymous "proportional offers" scheme: every round each active
// edge receives, from each endpoint, an offer of slack/active-degree and
// raises y_e by the smaller one; a node whose slack reaches zero is
// *saturated* and freezes its edges.  All arithmetic is exact (rationals),
// so saturation and maximality are decided precisely.
//
// The saturated nodes of a maximal packing form a 2-approximate vertex
// cover (LP duality), which is the second half of [2]'s result.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_coloured_graph.hpp"

namespace dmm::algo {

/// Exact non-negative rational with overflow-checked arithmetic.
class Fraction {
 public:
  Fraction() = default;
  Fraction(std::int64_t num, std::int64_t den);

  static Fraction zero() { return Fraction(0, 1); }
  static Fraction one() { return Fraction(1, 1); }

  Fraction operator+(const Fraction& rhs) const;
  Fraction operator-(const Fraction& rhs) const;
  Fraction operator/(std::int64_t divisor) const;
  bool operator==(const Fraction& rhs) const noexcept = default;
  bool operator<(const Fraction& rhs) const;
  bool operator<=(const Fraction& rhs) const { return *this < rhs || *this == rhs; }

  bool is_zero() const noexcept { return num_ == 0; }
  double to_double() const noexcept { return static_cast<double>(num_) / static_cast<double>(den_); }
  std::string str() const;

 private:
  void normalise();
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

struct EdgePackingResult {
  std::vector<Fraction> weights;   // per edge (index into g.edges())
  std::vector<char> saturated;     // per node: slack == 0
  int rounds = 0;
  Fraction total_weight;           // Σ y_e (lower-bounds any vertex cover)
};

/// Runs the proportional-offer algorithm until every edge is frozen.
EdgePackingResult maximal_edge_packing(const graph::EdgeColouredGraph& g);

/// True iff `weights` is a feasible, maximal edge packing of g.
bool is_maximal_edge_packing(const graph::EdgeColouredGraph& g,
                             const std::vector<Fraction>& weights);

/// The saturated nodes of a maximal packing: a vertex cover of size at most
/// 2 * minimum vertex cover.
std::vector<graph::NodeIndex> vertex_cover_from_packing(const graph::EdgeColouredGraph& g,
                                                        const EdgePackingResult& packing);

}  // namespace dmm::algo
