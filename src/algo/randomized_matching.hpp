// Randomized maximal matching — a contrast baseline.
//
// The paper's Theorem 2 is about *deterministic* anonymous algorithms.
// With randomness the k-1 barrier evaporates: Luby-style symmetry breaking
// (every undecided edge draws a fresh priority each round; local minima
// enter the matching) finishes in O(log m) rounds with high probability,
// independently of k.  Running it beside greedy in the benches makes the
// scope of the lower bound tangible.
#pragma once

#include <vector>

#include "graph/edge_coloured_graph.hpp"
#include "local/algorithm.hpp"
#include "util/rng.hpp"

namespace dmm::algo {

struct RandomizedMatchingResult {
  std::vector<gk::Colour> outputs;  // paper encoding (§2.4)
  int rounds = 0;
};

/// Luby-style randomized maximal matching; faithful synchronous rounds
/// (all priorities drawn, then all decisions applied).
RandomizedMatchingResult randomized_matching(const graph::EdgeColouredGraph& g, Rng& rng);

}  // namespace dmm::algo
