// (Δ+1)-vertex colouring in O(Δ² + log* n) rounds (§1.1's second bullet,
// after Barenboim-Elkin [3] / Kuhn [9], in the standard LOCAL model with
// O(log n)-bit unique identifiers).
//
// Identifiers seed a proper colouring of the conflict graph (the graph
// itself); iterated Linial reduction brings the palette to poly(Δ) in
// O(log* n) rounds, and one-class-per-round elimination finishes at Δ+1.
// As with the matching reduction, we implement the fully-specified
// variant with an O(Δ²)-ish middle palette; the k-independent shape is
// what §1.1's comparison uses (see DESIGN.md "Substitutions").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_coloured_graph.hpp"

namespace dmm::algo {

struct VertexColouringResult {
  std::vector<std::int64_t> colours;  // per node, in [0, palette)
  std::int64_t palette = 0;
  int rounds = 0;
};

/// Properly colours g's nodes with at most Δ+1 colours.  `ids` must be
/// unique per node.
VertexColouringResult delta_plus_one_colouring(const graph::EdgeColouredGraph& g,
                                               const std::vector<std::uint64_t>& ids);

/// True iff adjacent nodes received distinct colours.
bool is_proper_vertex_colouring(const graph::EdgeColouredGraph& g,
                                const std::vector<std::int64_t>& colours);

}  // namespace dmm::algo
