#include "algo/truncated_greedy.hpp"

#include "algo/greedy.hpp"
#include "util/hash.hpp"

namespace dmm::algo {

Colour TruncatedGreedy::evaluate(const colsys::ColourSystem& view) const {
  const std::vector<Colour> outs = greedy_outputs(view);
  return outs[static_cast<std::size_t>(colsys::ColourSystem::root())];
}

Colour ArbitraryLocal::evaluate(const colsys::ColourSystem& view) const {
  const std::vector<std::uint8_t> canon = view.serialize(r_ + 1);
  std::uint64_t h = fnv1a(canon);
  h ^= seed_ + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  const std::vector<Colour> incident = view.colours_at(colsys::ColourSystem::root());
  if (incident.empty()) return local::kUnmatched;
  // Bias a configurable fraction of views towards ⊥, the rest spread over
  // the incident colours.
  const std::uint64_t bucket = h % 1000;
  if (static_cast<double>(bucket) < unmatched_bias_ * 1000.0) return local::kUnmatched;
  return incident[(h / 1000) % incident.size()];
}

Colour FirstColourLocal::evaluate(const colsys::ColourSystem& view) const {
  (void)k_;
  const auto root = colsys::ColourSystem::root();
  for (Colour c : view.colours_at(root)) {
    if (c == 1) return 1;
  }
  return local::kUnmatched;
}

}  // namespace dmm::algo
