#include "algo/bipartite_matching.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmm::algo {

BipartiteMatchingResult bipartite_proposal_matching(const graph::EdgeColouredGraph& g,
                                                    const std::vector<bool>& white) {
  if (static_cast<int>(white.size()) != g.node_count()) {
    throw std::invalid_argument("bipartite_proposal_matching: side vector size mismatch");
  }
  for (const graph::Edge& e : g.edges()) {
    if (white[static_cast<std::size_t>(e.u)] == white[static_cast<std::size_t>(e.v)]) {
      throw std::invalid_argument("bipartite_proposal_matching: edge within one side");
    }
  }

  BipartiteMatchingResult result;
  result.outputs.assign(static_cast<std::size_t>(g.node_count()), local::kUnmatched);
  // Per white node: the list of incident colours still to propose along,
  // in increasing colour order (anonymous: colours are local knowledge).
  std::vector<std::vector<gk::Colour>> pending(static_cast<std::size_t>(g.node_count()));
  int live_whites = 0;
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    if (white[static_cast<std::size_t>(v)]) {
      pending[static_cast<std::size_t>(v)] = g.incident_colours(v);
      if (!pending[static_cast<std::size_t>(v)].empty()) ++live_whites;
    }
  }

  while (live_whites > 0) {
    ++result.rounds;  // proposal round
    // Phase 1: every live white proposes along its next colour.
    struct Proposal {
      graph::NodeIndex white_node;
      gk::Colour colour;
    };
    std::vector<std::vector<Proposal>> inbox(static_cast<std::size_t>(g.node_count()));
    for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
      if (!white[static_cast<std::size_t>(v)]) continue;
      if (result.outputs[static_cast<std::size_t>(v)] != local::kUnmatched) continue;
      auto& queue = pending[static_cast<std::size_t>(v)];
      if (queue.empty()) continue;
      const gk::Colour c = queue.front();
      queue.erase(queue.begin());
      inbox[static_cast<std::size_t>(*g.neighbour(v, c))].push_back({v, c});
    }
    ++result.rounds;  // accept round
    // Phase 2: unmatched black nodes accept the smallest-coloured proposal.
    for (graph::NodeIndex b = 0; b < g.node_count(); ++b) {
      if (white[static_cast<std::size_t>(b)]) continue;
      if (result.outputs[static_cast<std::size_t>(b)] != local::kUnmatched) continue;
      auto& proposals = inbox[static_cast<std::size_t>(b)];
      if (proposals.empty()) continue;
      const auto best = std::min_element(
          proposals.begin(), proposals.end(),
          [](const Proposal& x, const Proposal& y) { return x.colour < y.colour; });
      result.outputs[static_cast<std::size_t>(b)] = best->colour;
      result.outputs[static_cast<std::size_t>(best->white_node)] = best->colour;
    }
    // Book-keeping: count whites still in play.
    live_whites = 0;
    for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
      if (white[static_cast<std::size_t>(v)] &&
          result.outputs[static_cast<std::size_t>(v)] == local::kUnmatched &&
          !pending[static_cast<std::size_t>(v)].empty()) {
        ++live_whites;
      }
    }
  }
  return result;
}

graph::EdgeColouredGraph random_bipartite(int n_left, int n_right, int k, double density,
                                          Rng& rng) {
  graph::EdgeColouredGraph g(n_left + n_right, k);
  // Each colour class: a random partial matching between the two sides.
  std::vector<graph::NodeIndex> left(static_cast<std::size_t>(n_left));
  std::vector<graph::NodeIndex> right(static_cast<std::size_t>(n_right));
  for (int i = 0; i < n_left; ++i) left[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < n_right; ++i) right[static_cast<std::size_t>(i)] = n_left + i;
  for (gk::Colour c = 1; c <= k; ++c) {
    std::shuffle(left.begin(), left.end(), rng.engine());
    std::shuffle(right.begin(), right.end(), rng.engine());
    const int pairs = std::min(n_left, n_right);
    for (int i = 0; i < pairs; ++i) {
      const graph::NodeIndex u = left[static_cast<std::size_t>(i)];
      const graph::NodeIndex v = right[static_cast<std::size_t>(i)];
      if (rng.chance(density) && !g.has_edge(u, v)) g.add_edge(u, v, c);
    }
  }
  return g;
}

}  // namespace dmm::algo
