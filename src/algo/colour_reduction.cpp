#include "algo/colour_reduction.hpp"

#include <algorithm>

#include "algo/linial.hpp"
#include "local/engine.hpp"

namespace dmm::algo {

namespace {

/// Adjacency between edges of g (shared endpoint), as index lists.
std::vector<std::vector<int>> line_graph_adjacency(const graph::EdgeColouredGraph& g) {
  std::vector<std::vector<int>> touching(static_cast<std::size_t>(g.node_count()));
  const auto& edges = g.edges();
  for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
    touching[static_cast<std::size_t>(edges[static_cast<std::size_t>(i)].u)].push_back(i);
    touching[static_cast<std::size_t>(edges[static_cast<std::size_t>(i)].v)].push_back(i);
  }
  std::vector<std::vector<int>> adj(edges.size());
  for (const auto& list : touching) {
    for (int a : list) {
      for (int b : list) {
        if (a != b) adj[static_cast<std::size_t>(a)].push_back(b);
      }
    }
  }
  return adj;
}

int line_graph_max_degree(const std::vector<std::vector<int>>& adj) {
  std::size_t d = 0;
  for (const auto& list : adj) d = std::max(d, list.size());
  return static_cast<int>(d);
}

}  // namespace

ReductionResult linial_colour_reduction(const graph::EdgeColouredGraph& g) {
  const auto& edges = g.edges();
  std::vector<std::int64_t> labels(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    labels[i] = static_cast<std::int64_t>(edges[i].colour) - 1;
  }
  const linial::Reduction reduced =
      linial::reduce(line_graph_adjacency(g), std::move(labels), g.k());
  return ReductionResult{reduced.labels, reduced.palette, reduced.rounds};
}

EdgeColouringResult edge_colouring_two_delta(const graph::EdgeColouredGraph& g) {
  const auto adj = line_graph_adjacency(g);
  const auto& edges = g.edges();
  std::vector<std::int64_t> labels(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    labels[i] = static_cast<std::int64_t>(edges[i].colour) - 1;
  }
  linial::Reduction reduced = linial::reduce(adj, std::move(labels), g.k());
  const std::int64_t target = line_graph_max_degree(adj) + 1;
  linial::eliminate_to(adj, reduced, target);
  return EdgeColouringResult{std::move(reduced.labels),
                             std::min(reduced.palette, std::max<std::int64_t>(target, 1)),
                             reduced.rounds};
}

ReducedMatchingResult reduced_matching(const graph::EdgeColouredGraph& g) {
  ReducedMatchingResult result;
  ReductionResult reduced = linial_colour_reduction(g);
  result.reduction_rounds = reduced.rounds;
  result.palette = reduced.palette;

  // Greedy over the reduced classes (Lemma 1 on the new colouring): class 0
  // is free, every further class costs one round.
  result.outputs.assign(static_cast<std::size_t>(g.node_count()), local::kUnmatched);
  const auto& edges = g.edges();
  for (std::int64_t c = 0; c < reduced.palette; ++c) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (reduced.labels[i] != c) continue;
      const auto& e = edges[i];
      if (result.outputs[static_cast<std::size_t>(e.u)] == local::kUnmatched &&
          result.outputs[static_cast<std::size_t>(e.v)] == local::kUnmatched) {
        // The *local output* must follow the paper's encoding: the original
        // edge colour, so that verify::check_outputs can validate it.
        result.outputs[static_cast<std::size_t>(e.u)] = e.colour;
        result.outputs[static_cast<std::size_t>(e.v)] = e.colour;
      }
    }
  }
  result.greedy_rounds = static_cast<int>(std::max<std::int64_t>(reduced.palette - 1, 0));
  result.total_rounds = result.reduction_rounds + result.greedy_rounds;
  return result;
}

}  // namespace dmm::algo
