#include "algo/greedy.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "local/program_pool.hpp"

namespace dmm::algo {

std::vector<Colour> greedy_outputs(const graph::EdgeColouredGraph& g) {
  std::vector<Colour> out(static_cast<std::size_t>(g.node_count()), local::kUnmatched);
  for (Colour c = 1; c <= g.k(); ++c) {
    for (const graph::Edge& e : g.edges()) {
      if (e.colour != c) continue;
      if (out[static_cast<std::size_t>(e.u)] == local::kUnmatched &&
          out[static_cast<std::size_t>(e.v)] == local::kUnmatched) {
        out[static_cast<std::size_t>(e.u)] = c;
        out[static_cast<std::size_t>(e.v)] = c;
      }
    }
  }
  return out;
}

std::vector<Colour> greedy_outputs(const colsys::ColourSystem& system) {
  std::vector<Colour> out(static_cast<std::size_t>(system.size()), local::kUnmatched);
  for (Colour c = 1; c <= system.k(); ++c) {
    for (colsys::NodeId v = 1; v < system.size(); ++v) {
      if (system.parent_colour(v) != c) continue;
      const colsys::NodeId p = system.parent(v);
      if (out[static_cast<std::size_t>(v)] == local::kUnmatched &&
          out[static_cast<std::size_t>(p)] == local::kUnmatched) {
        out[static_cast<std::size_t>(v)] = c;
        out[static_cast<std::size_t>(p)] = c;
      }
    }
  }
  return out;
}

bool GreedyProgram::init(const std::vector<Colour>& incident) {
  // Map-engine path: the caller's vector is a temporary, so take a copy.
  owned_ = incident;
  incident_ = owned_.data();
  degree_ = static_cast<int>(owned_.size());
  return start();
}

bool GreedyProgram::init_flat(const Colour* incident, int degree) {
  // Flat-engine path: the CSR colour row outlives the run — borrow it.
  incident_ = incident;
  degree_ = degree;
  return start();
}

bool GreedyProgram::start() {
  // Step 1 needs no communication: an incident colour-1 edge matches both
  // of its endpoints immediately (a properly coloured graph has at most one
  // such edge per node, and its other endpoint reasons identically).
  if (degree_ > 0 && incident_[0] == 1) {
    matched_ = true;
    output_ = 1;
  }
  return try_finish(/*completed_step=*/1);
}

bool GreedyProgram::try_finish(int completed_step) {
  if (matched_) return true;
  // An unmatched node may stop once every incident colour has been decided.
  const Colour largest = degree_ == 0 ? 0 : incident_[degree_ - 1];
  if (completed_step >= largest) {
    output_ = local::kUnmatched;
    return true;
  }
  return false;
}

std::map<Colour, local::Message> GreedyProgram::send(int round) {
  (void)round;
  std::map<Colour, local::Message> out;
  for (int i = 0; i < degree_; ++i) out[incident_[i]] = matched_ ? "M" : "F";
  return out;
}

bool GreedyProgram::receive(int round, const std::map<Colour, local::Message>& inbox) {
  // Allocated here, not in init: the flat fast path below never needs it.
  if (static_cast<int>(neighbour_matched_.size()) != degree_) {
    neighbour_matched_.assign(static_cast<std::size_t>(degree_), 0);
  }
  // After the exchange in round t we know the neighbours' status at the end
  // of step t, which decides step t+1 (edges of colour t+1).
  for (int i = 0; i < degree_; ++i) {
    const auto it = inbox.find(incident_[i]);
    if (it == inbox.end()) continue;
    const local::Message& m = it->second;
    // A halted neighbour announces its output; a matched announcement or an
    // explicit "M" both mean "taken".  An announced ⊥ means permanently free,
    // but a ⊥ neighbour can never be our colour-(t+1) partner anyway (it
    // halted only after its last chance passed), so treat it as free.
    const bool neighbour_matched =
        m == "M" || (!m.empty() && m.front() == local::kHaltedPrefix && m != "!0");
    neighbour_matched_[static_cast<std::size_t>(i)] = neighbour_matched ? 1 : 0;
  }
  const Colour next = static_cast<Colour>(round + 1);
  if (!matched_) {
    for (int i = 0; i < degree_; ++i) {
      if (incident_[i] == next && !neighbour_matched_[static_cast<std::size_t>(i)]) {
        matched_ = true;
        output_ = next;
      }
    }
  }
  return try_finish(/*completed_step=*/round + 1);
}

void GreedyProgram::send_flat(int round, local::FlatOutbox& out) {
  (void)round;
  // Same one-byte status per incident colour as send(), without the map.
  out.broadcast(matched_ ? std::string_view("M") : std::string_view("F"));
}

bool GreedyProgram::receive_flat(int round, const local::FlatInbox& in) {
  // Only the colour-(round+1) port can change our fate, and the status
  // decoding matches receive() byte for byte; the per-port status array is
  // not needed because every entry is refreshed every round anyway.
  const Colour next = static_cast<Colour>(round + 1);
  if (!matched_) {
    for (int i = 0; i < in.ports(); ++i) {
      if (in.colour(i) != next) continue;
      const std::string_view m = in.at(i);
      const bool neighbour_matched =
          m == "M" || (!m.empty() && m.front() == local::kHaltedPrefix && m != "!0");
      if (!neighbour_matched) {
        matched_ = true;
        output_ = next;
      }
    }
  }
  return try_finish(/*completed_step=*/round + 1);
}

void GreedyProgram::save_state(std::string& out) const {
  out.push_back(matched_ ? '\1' : '\0');
  out.push_back(static_cast<char>(output_));
}

void GreedyProgram::load_state(std::string_view in) {
  if (in.size() != 2 || static_cast<unsigned char>(in[0]) > 1) {
    throw std::invalid_argument("GreedyProgram::load_state: malformed state blob");
  }
  matched_ = in[0] != '\0';
  output_ = static_cast<Colour>(static_cast<unsigned char>(in[1]));
}

void GreedyProgramFactory::make_programs(std::size_t count, local::ProgramPool& pool) const {
  // The tuned batched path: all n programs in one contiguous arena block,
  // so the engines' per-node walk is a sequential sweep.
  pool.emplace_batch<GreedyProgram>(count);
}

local::NodeProgram* GreedyProgramFactory::make_one(local::ProgramPool& pool) const {
  return pool.emplace<GreedyProgram>();
}

local::ProgramSource greedy_program_factory() {
  return local::ProgramSource(std::make_shared<const GreedyProgramFactory>());
}

Colour GreedyLocal::evaluate(const colsys::ColourSystem& view) const {
  // Simulate greedy on the view; by the radius argument of §1.2 the fate of
  // the root after all k steps depends only on the radius-k ball, which is
  // exactly the view we received.
  const std::vector<Colour> outs = greedy_outputs(view);
  return outs[static_cast<std::size_t>(colsys::ColourSystem::root())];
}

}  // namespace dmm::algo
