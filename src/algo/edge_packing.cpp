#include "algo/edge_packing.hpp"

#include <numeric>
#include <stdexcept>

namespace dmm::algo {

namespace {

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  const __int128 wide = static_cast<__int128>(a) * b;
  if (wide > INT64_MAX || wide < INT64_MIN) {
    throw std::overflow_error("Fraction: arithmetic overflow");
  }
  return static_cast<std::int64_t>(wide);
}

}  // namespace

Fraction::Fraction(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 0) throw std::invalid_argument("Fraction: zero denominator");
  normalise();
}

void Fraction::normalise() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

Fraction Fraction::operator+(const Fraction& rhs) const {
  return Fraction(checked_mul(num_, rhs.den_) + checked_mul(rhs.num_, den_),
                  checked_mul(den_, rhs.den_));
}

Fraction Fraction::operator-(const Fraction& rhs) const {
  return Fraction(checked_mul(num_, rhs.den_) - checked_mul(rhs.num_, den_),
                  checked_mul(den_, rhs.den_));
}

Fraction Fraction::operator/(std::int64_t divisor) const {
  if (divisor == 0) throw std::invalid_argument("Fraction: division by zero");
  return Fraction(num_, checked_mul(den_, divisor));
}

bool Fraction::operator<(const Fraction& rhs) const {
  return checked_mul(num_, rhs.den_) < checked_mul(rhs.num_, den_);
}

std::string Fraction::str() const {
  return std::to_string(num_) + "/" + std::to_string(den_);
}

EdgePackingResult maximal_edge_packing(const graph::EdgeColouredGraph& g) {
  const auto& edges = g.edges();
  EdgePackingResult result;
  result.weights.assign(edges.size(), Fraction::zero());
  result.saturated.assign(static_cast<std::size_t>(g.node_count()), 0);
  result.total_weight = Fraction::zero();

  std::vector<Fraction> slack(static_cast<std::size_t>(g.node_count()), Fraction::one());
  std::vector<char> active(edges.size(), 1);
  std::vector<int> active_degree(static_cast<std::size_t>(g.node_count()), 0);
  for (const graph::Edge& e : edges) {
    ++active_degree[static_cast<std::size_t>(e.u)];
    ++active_degree[static_cast<std::size_t>(e.v)];
  }

  int remaining = static_cast<int>(edges.size());
  while (remaining > 0) {
    ++result.rounds;
    // Simultaneous offers (computed from the state at the start of the
    // round, as the synchronous model requires).
    std::vector<Fraction> raise(edges.size(), Fraction::zero());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!active[i]) continue;
      const auto u = static_cast<std::size_t>(edges[i].u);
      const auto v = static_cast<std::size_t>(edges[i].v);
      const Fraction offer_u = slack[u] / active_degree[u];
      const Fraction offer_v = slack[v] / active_degree[v];
      raise[i] = offer_u < offer_v ? offer_u : offer_v;
    }
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!active[i]) continue;
      result.weights[i] = result.weights[i] + raise[i];
      result.total_weight = result.total_weight + raise[i];
      slack[static_cast<std::size_t>(edges[i].u)] =
          slack[static_cast<std::size_t>(edges[i].u)] - raise[i];
      slack[static_cast<std::size_t>(edges[i].v)] =
          slack[static_cast<std::size_t>(edges[i].v)] - raise[i];
    }
    // Freeze edges with a saturated endpoint.
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!active[i]) continue;
      const auto u = static_cast<std::size_t>(edges[i].u);
      const auto v = static_cast<std::size_t>(edges[i].v);
      if (slack[u].is_zero() || slack[v].is_zero()) {
        active[i] = 0;
        --active_degree[u];
        --active_degree[v];
        --remaining;
      }
    }
    if (result.rounds > 4 * g.node_count() + 8) {
      throw std::runtime_error("maximal_edge_packing: did not converge (bug)");
    }
  }
  for (std::size_t v = 0; v < slack.size(); ++v) {
    result.saturated[v] = slack[v].is_zero() ? 1 : 0;
  }
  return result;
}

bool is_maximal_edge_packing(const graph::EdgeColouredGraph& g,
                             const std::vector<Fraction>& weights) {
  std::vector<Fraction> load(static_cast<std::size_t>(g.node_count()), Fraction::zero());
  const auto& edges = g.edges();
  if (weights.size() != edges.size()) return false;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    load[static_cast<std::size_t>(edges[i].u)] =
        load[static_cast<std::size_t>(edges[i].u)] + weights[i];
    load[static_cast<std::size_t>(edges[i].v)] =
        load[static_cast<std::size_t>(edges[i].v)] + weights[i];
  }
  for (const Fraction& l : load) {
    if (Fraction::one() < l) return false;  // infeasible
  }
  for (const graph::Edge& e : edges) {
    // Maximality: every edge must have a saturated endpoint.
    if (!(load[static_cast<std::size_t>(e.u)] == Fraction::one()) &&
        !(load[static_cast<std::size_t>(e.v)] == Fraction::one())) {
      return false;
    }
  }
  return true;
}

std::vector<graph::NodeIndex> vertex_cover_from_packing(const graph::EdgeColouredGraph& g,
                                                        const EdgePackingResult& packing) {
  std::vector<graph::NodeIndex> cover;
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    if (packing.saturated[static_cast<std::size_t>(v)]) cover.push_back(v);
  }
  return cover;
}

}  // namespace dmm::algo
