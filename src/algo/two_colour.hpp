// Maximal matching in 2-edge-coloured graphs (§1.1, citing Hańćkowiak,
// Karoński & Panconesi [6]): with k = 2 the greedy algorithm needs a single
// round, and no algorithm can be faster in general (Lemma 4).
#pragma once

#include <vector>

#include "graph/edge_coloured_graph.hpp"
#include "local/algorithm.hpp"

namespace dmm::algo {

struct TwoColourResult {
  std::vector<gk::Colour> outputs;
  int rounds = 0;  // 0 if the instance has no colour-2 conflicts, else 1
};

/// Maximal matching of a properly ≤2-edge-coloured graph: all colour-1
/// edges enter the matching at once (round 0); colour-2 edges with both
/// endpoints still free enter after one exchange.
TwoColourResult two_colour_matching(const graph::EdgeColouredGraph& g);

}  // namespace dmm::algo
