// Maximal matching in (vertex-)2-coloured graphs in O(Δ) rounds — the
// proposal algorithm behind §1.1's citation of Hańćkowiak, Karoński &
// Panconesi [6].
//
// Nodes know which side of the bipartition they are on (white = proposer,
// black = acceptor); no identifiers are needed.  White nodes propose along
// their incident edges in increasing colour order, one per round; black
// nodes accept the smallest-coloured proposal they ever see while
// unmatched.  Every white node is matched or has proposed everywhere, and
// a rejected proposal means the black side got matched — so the matching
// is maximal after at most 2Δ rounds.
//
// This complements algo/two_colour.hpp, which implements the *edge*-
// 2-coloured reading of "2-coloured" (a trivial case of Lemma 1); the two
// readings coexist in the literature and both are part of the §1.1
// landscape.
#pragma once

#include <vector>

#include "graph/edge_coloured_graph.hpp"
#include "local/algorithm.hpp"
#include "util/rng.hpp"

namespace dmm::algo {

struct BipartiteMatchingResult {
  std::vector<gk::Colour> outputs;  // paper encoding (§2.4)
  int rounds = 0;                   // proposal/accept rounds used
};

/// Runs the proposal algorithm.  `white[v]` marks the proposing side;
/// every edge must join a white node to a black one (throws otherwise).
BipartiteMatchingResult bipartite_proposal_matching(const graph::EdgeColouredGraph& g,
                                                    const std::vector<bool>& white);

/// Random properly k-edge-coloured bipartite instance: n_left white nodes
/// (indices 0..n_left-1), n_right black nodes.  Also returns nothing extra:
/// the caller derives `white` from the index split.
graph::EdgeColouredGraph random_bipartite(int n_left, int n_right, int k, double density,
                                          Rng& rng);

}  // namespace dmm::algo
