#include "algo/vertex_colouring.hpp"

#include <algorithm>
#include <stdexcept>

#include "algo/linial.hpp"

namespace dmm::algo {

namespace {

std::vector<std::vector<int>> vertex_adjacency(const graph::EdgeColouredGraph& g) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(g.node_count()));
  for (const graph::Edge& e : g.edges()) {
    adj[static_cast<std::size_t>(e.u)].push_back(e.v);
    adj[static_cast<std::size_t>(e.v)].push_back(e.u);
  }
  return adj;
}

}  // namespace

VertexColouringResult delta_plus_one_colouring(const graph::EdgeColouredGraph& g,
                                               const std::vector<std::uint64_t>& ids) {
  if (static_cast<int>(ids.size()) != g.node_count()) {
    throw std::invalid_argument("delta_plus_one_colouring: one id per node required");
  }
  {
    std::vector<std::uint64_t> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument("delta_plus_one_colouring: ids must be unique");
    }
  }
  const auto adj = vertex_adjacency(g);
  std::int64_t palette = 1;
  std::vector<std::int64_t> labels(ids.size());
  for (std::size_t v = 0; v < ids.size(); ++v) {
    labels[v] = static_cast<std::int64_t>(ids[v]);
    palette = std::max(palette, labels[v] + 1);
  }
  linial::Reduction reduced = linial::reduce(adj, std::move(labels), palette);
  const std::int64_t target = static_cast<std::int64_t>(g.max_degree()) + 1;
  linial::eliminate_to(adj, reduced, target);
  return VertexColouringResult{std::move(reduced.labels),
                               std::min(reduced.palette, std::max<std::int64_t>(target, 1)),
                               reduced.rounds};
}

bool is_proper_vertex_colouring(const graph::EdgeColouredGraph& g,
                                const std::vector<std::int64_t>& colours) {
  if (static_cast<int>(colours.size()) != g.node_count()) return false;
  for (const graph::Edge& e : g.edges()) {
    if (colours[static_cast<std::size_t>(e.u)] == colours[static_cast<std::size_t>(e.v)]) {
      return false;
    }
  }
  return true;
}

}  // namespace dmm::algo
