// The port-numbering (PN) model (§1.4, after Angluin [1] and
// Yamashita-Kameda [17, 18]).
//
// A PN network gives each node a private numbering 1..deg(v) of its
// incident edges; there are no identifiers and no edge colours.  The
// paper's lower bound covers this model (an edge-coloured algorithm is at
// least as strong, since a proper edge colouring induces a valid port
// numbering at both endpoints); this module makes the model concrete and
// demonstrates the classical symmetry facts the paper leans on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_coloured_graph.hpp"

namespace dmm::pn {

using Port = int;  // 1-based; 0 = "no port" sentinel
using NodeIndex = graph::NodeIndex;

class PortNetwork {
 public:
  explicit PortNetwork(int n);

  int node_count() const noexcept { return static_cast<int>(links_.size()); }
  int degree(NodeIndex v) const;

  /// Connects port p of u with port q of v.  Ports must be fresh; the
  /// numbering at each node must end up contiguous 1..deg (validated by
  /// finalise()).
  void connect(NodeIndex u, Port p, NodeIndex v, Port q);

  /// Endpoint of (v, port): the neighbour and the port under which the
  /// neighbour sees this edge.
  struct End {
    NodeIndex node;
    Port port;
  };
  End endpoint(NodeIndex v, Port p) const;

  /// Checks contiguity of all port numberings.
  bool is_valid() const;

  /// The PN network induced by a properly edge-coloured graph: at every
  /// node, ports are assigned in increasing colour order (the standard
  /// reduction showing the edge-coloured model is at least as strong).
  static PortNetwork from_coloured(const graph::EdgeColouredGraph& g);

  /// The directed n-cycle with consistent ports: port 1 = clockwise
  /// successor, port 2 = predecessor.  The canonical fully symmetric
  /// instance: all nodes have identical views at every radius.
  static PortNetwork symmetric_cycle(int n);

 private:
  // links_[v][p-1] = (neighbour, their port).
  std::vector<std::vector<End>> links_;
};

}  // namespace dmm::pn
