// Bridge between the edge-coloured model and the PN model.
//
// The edge-coloured model is the PN model plus edge-colour input labels:
// with PortNetwork::from_coloured the ports at each node enumerate the
// incident colours in increasing order, so a coloured NodeProgram can run
// unchanged once each node is told its incident colours.  This is the
// reduction behind §1.4's remark that the paper's lower bound covers the
// port-numbering model and its weaker variants.
#pragma once

#include <memory>

#include "local/engine.hpp"
#include "pn/pn_engine.hpp"

namespace dmm::pn {

/// Runs a coloured-model program as a PN program.  `incident` is the
/// node's input label: its incident colours, sorted — matching the port
/// order of PortNetwork::from_coloured.
class ColouredAdapter final : public PnProgram {
 public:
  ColouredAdapter(std::unique_ptr<local::NodeProgram> inner, std::vector<gk::Colour> incident);

  bool init(int degree) override;
  std::map<Port, Message> send(int round) override;
  bool receive(int round, const std::map<Port, Message>& inbox) override;
  PnOutput output() const override;

 private:
  std::unique_ptr<local::NodeProgram> inner_;
  std::vector<gk::Colour> incident_;  // port p <-> incident_[p-1]
};

/// Runs the coloured greedy algorithm on a coloured instance *through the
/// PN engine* (ports only on the wire, colours as local inputs) and
/// returns outputs re-encoded as colours.  Used to cross-validate the two
/// models.
struct PnGreedyResult {
  std::vector<gk::Colour> outputs;
  int rounds = 0;
};
PnGreedyResult greedy_via_pn(const graph::EdgeColouredGraph& g);

/// The bipartite proposal algorithm ([6], §1.1) as a *native* PN program:
/// only the side bit is input, ports are the only structure.  White nodes
/// propose along ports 1, 2, ... one per round; black nodes accept the
/// smallest-ported proposal while free.
class ProposalProgram final : public PnProgram {
 public:
  explicit ProposalProgram(bool white) : white_(white) {}

  bool init(int degree) override;
  std::map<Port, Message> send(int round) override;
  bool receive(int round, const std::map<Port, Message>& inbox) override;
  PnOutput output() const override { return matched_port_; }

 private:
  bool white_;
  int degree_ = 0;
  Port next_proposal_ = 1;
  Port pending_proposal_ = 0;  // white: the port proposed this exchange
  PnOutput matched_port_ = kPnUnmatched;
  bool accepted_someone_ = false;
};

/// Runs ProposalProgram over the PN network of g and re-encodes outputs as
/// colours (for verify::check_outputs).  `white[v]` marks proposers.
struct PnProposalResult {
  std::vector<gk::Colour> outputs;
  int rounds = 0;
};
PnProposalResult proposal_via_pn(const graph::EdgeColouredGraph& g,
                                 const std::vector<bool>& white);

}  // namespace dmm::pn
