#include "pn/adapter.hpp"

#include <stdexcept>

#include "algo/greedy.hpp"

namespace dmm::pn {

ColouredAdapter::ColouredAdapter(std::unique_ptr<local::NodeProgram> inner,
                                 std::vector<gk::Colour> incident)
    : inner_(std::move(inner)), incident_(std::move(incident)) {}

bool ColouredAdapter::init(int degree) {
  if (degree != static_cast<int>(incident_.size())) {
    throw std::logic_error("ColouredAdapter: degree does not match the colour labels");
  }
  return inner_->init(incident_);
}

std::map<Port, Message> ColouredAdapter::send(int round) {
  std::map<Port, Message> out;
  for (auto& [colour, msg] : inner_->send(round)) {
    for (std::size_t i = 0; i < incident_.size(); ++i) {
      if (incident_[i] == colour) out[static_cast<Port>(i + 1)] = std::move(msg);
    }
  }
  return out;
}

bool ColouredAdapter::receive(int round, const std::map<Port, Message>& inbox) {
  std::map<gk::Colour, local::Message> translated;
  for (const auto& [port, msg] : inbox) {
    translated[incident_[static_cast<std::size_t>(port - 1)]] = msg;
  }
  return inner_->receive(round, translated);
}

PnOutput ColouredAdapter::output() const {
  const gk::Colour c = inner_->output();
  if (c == local::kUnmatched) return kPnUnmatched;
  for (std::size_t i = 0; i < incident_.size(); ++i) {
    if (incident_[i] == c) return static_cast<Port>(i + 1);
  }
  throw std::logic_error("ColouredAdapter: output colour not incident");
}

bool ProposalProgram::init(int degree) {
  degree_ = degree;
  return degree_ == 0;  // isolated nodes answer ⊥ immediately
}

std::map<Port, Message> ProposalProgram::send(int round) {
  std::map<Port, Message> out;
  if (white_) {
    // Whites propose on odd rounds, one untried port at a time.
    if (round % 2 == 1 && matched_port_ == kPnUnmatched && pending_proposal_ == 0 &&
        next_proposal_ <= degree_) {
      out[next_proposal_] = "P";
      pending_proposal_ = next_proposal_;
      ++next_proposal_;
    }
  } else {
    // Blacks reply on even rounds: one accept, at most once.
    if (round % 2 == 0 && accepted_someone_ && matched_port_ != kPnUnmatched) {
      out[matched_port_] = "A";
    }
  }
  return out;
}

bool ProposalProgram::receive(int round, const std::map<Port, Message>& inbox) {
  if (white_) {
    if (round % 2 == 0 && pending_proposal_ != 0) {
      const auto it = inbox.find(pending_proposal_);
      if (it != inbox.end() && it->second == "A") {
        matched_port_ = pending_proposal_;
        return true;
      }
      pending_proposal_ = 0;
      if (next_proposal_ > degree_) return true;  // exhausted: ⊥
    }
    return false;
  }
  if (round % 2 == 1) {
    if (!accepted_someone_) {
      Port best = 0;
      bool all_announcements = true;
      for (const auto& [port, msg] : inbox) {
        if (msg == "P" && (best == 0 || port < best)) best = port;
        if (msg.empty() || msg.front() != '!') all_announcements = false;
      }
      if (best != 0) {
        matched_port_ = best;
        accepted_someone_ = true;
      } else if (all_announcements) {
        return true;  // every white neighbour has halted: ⊥ is final
      }
    }
    return false;
  }
  // Even receive: if the accept was sent this round, the handshake is done.
  return accepted_someone_ && matched_port_ != kPnUnmatched;
}

PnProposalResult proposal_via_pn(const graph::EdgeColouredGraph& g,
                                 const std::vector<bool>& white) {
  if (static_cast<int>(white.size()) != g.node_count()) {
    throw std::invalid_argument("proposal_via_pn: side vector size mismatch");
  }
  const PortNetwork net = PortNetwork::from_coloured(g);
  graph::NodeIndex next = 0;
  const PnRunResult run = run_pn(
      net,
      [&]() -> std::unique_ptr<PnProgram> {
        const graph::NodeIndex v = next++;
        return std::make_unique<ProposalProgram>(white[static_cast<std::size_t>(v)]);
      },
      2 * g.max_degree() + 6);
  PnProposalResult result;
  result.rounds = run.rounds;
  result.outputs.assign(static_cast<std::size_t>(g.node_count()), local::kUnmatched);
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    const PnOutput p = run.outputs[static_cast<std::size_t>(v)];
    if (p != kPnUnmatched) {
      result.outputs[static_cast<std::size_t>(v)] =
          g.incident_colours(v)[static_cast<std::size_t>(p - 1)];
    }
  }
  return result;
}

PnGreedyResult greedy_via_pn(const graph::EdgeColouredGraph& g) {
  const PortNetwork net = PortNetwork::from_coloured(g);
  // The factory is called once per node in index order; feed each adapter
  // its node's colour labels.
  graph::NodeIndex next = 0;
  const PnRunResult run = run_pn(
      net,
      [&]() -> std::unique_ptr<PnProgram> {
        const graph::NodeIndex v = next++;
        return std::make_unique<ColouredAdapter>(std::make_unique<algo::GreedyProgram>(),
                                                 g.incident_colours(v));
      },
      g.k() + 1,
      // Greedy's messages carry only the matched/free status, so it is a
      // broadcast algorithm — let the engine enforce that.
      /*broadcast=*/true);
  PnGreedyResult result;
  result.rounds = run.rounds;
  result.outputs.assign(static_cast<std::size_t>(g.node_count()), local::kUnmatched);
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    const PnOutput p = run.outputs[static_cast<std::size_t>(v)];
    if (p != kPnUnmatched) {
      result.outputs[static_cast<std::size_t>(v)] =
          g.incident_colours(v)[static_cast<std::size_t>(p - 1)];
    }
  }
  return result;
}

}  // namespace dmm::pn
