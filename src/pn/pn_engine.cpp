#include "pn/pn_engine.hpp"

#include <stdexcept>

namespace dmm::pn {

PnRunResult run_pn(const PortNetwork& net, const PnProgramFactory& factory, int max_rounds,
                   bool broadcast) {
  const int n = net.node_count();
  PnRunResult result;
  result.outputs.assign(static_cast<std::size_t>(n), kPnUnmatched);
  result.halt_round.assign(static_cast<std::size_t>(n), -1);

  std::vector<std::unique_ptr<PnProgram>> programs;
  std::vector<char> halted(static_cast<std::size_t>(n), 0);
  int running = n;
  for (NodeIndex v = 0; v < n; ++v) {
    programs.push_back(factory());
    if (programs.back()->init(net.degree(v))) {
      halted[static_cast<std::size_t>(v)] = 1;
      result.halt_round[static_cast<std::size_t>(v)] = 0;
      result.outputs[static_cast<std::size_t>(v)] = programs.back()->output();
      --running;
    }
  }
  // Uniformity check at round 0.
  for (NodeIndex v = 1; v < n; ++v) {
    if (halted[static_cast<std::size_t>(v)] != halted[0]) result.uniform_throughout = false;
  }

  for (int round = 1; running > 0; ++round) {
    if (round > max_rounds) {
      throw std::runtime_error("run_pn: algorithm did not halt within max_rounds");
    }
    std::vector<std::map<Port, Message>> outgoing(static_cast<std::size_t>(n));
    for (NodeIndex v = 0; v < n; ++v) {
      if (halted[static_cast<std::size_t>(v)]) continue;
      outgoing[static_cast<std::size_t>(v)] = programs[static_cast<std::size_t>(v)]->send(round);
      if (broadcast) {
        const auto& msgs = outgoing[static_cast<std::size_t>(v)];
        for (const auto& [port, msg] : msgs) {
          if (msg != msgs.begin()->second) {
            throw std::logic_error("run_pn: broadcast algorithm sent port-dependent messages");
          }
        }
      }
    }
    // Uniformity: all running nodes sent identical port->message maps.
    for (NodeIndex v = 1; v < n && result.uniform_throughout; ++v) {
      if (halted[static_cast<std::size_t>(v)] || halted[0]) continue;
      if (outgoing[static_cast<std::size_t>(v)] != outgoing[0]) result.uniform_throughout = false;
    }
    // Snapshot inboxes, then deliver (same simultaneity discipline as the
    // coloured engine).
    std::vector<std::map<Port, Message>> inboxes(static_cast<std::size_t>(n));
    for (NodeIndex v = 0; v < n; ++v) {
      if (halted[static_cast<std::size_t>(v)]) continue;
      for (Port p = 1; p <= net.degree(v); ++p) {
        const PortNetwork::End e = net.endpoint(v, p);
        if (halted[static_cast<std::size_t>(e.node)]) {
          inboxes[static_cast<std::size_t>(v)][p] =
              "!" + std::to_string(result.outputs[static_cast<std::size_t>(e.node)]);
        } else {
          const auto it = outgoing[static_cast<std::size_t>(e.node)].find(e.port);
          inboxes[static_cast<std::size_t>(v)][p] =
              it == outgoing[static_cast<std::size_t>(e.node)].end() ? Message{} : it->second;
        }
      }
    }
    for (NodeIndex v = 0; v < n; ++v) {
      if (halted[static_cast<std::size_t>(v)]) continue;
      if (programs[static_cast<std::size_t>(v)]->receive(round, inboxes[static_cast<std::size_t>(v)])) {
        halted[static_cast<std::size_t>(v)] = 1;
        result.halt_round[static_cast<std::size_t>(v)] = round;
        result.outputs[static_cast<std::size_t>(v)] = programs[static_cast<std::size_t>(v)]->output();
        --running;
      }
    }
    for (NodeIndex v = 1; v < n && result.uniform_throughout; ++v) {
      if (halted[static_cast<std::size_t>(v)] != halted[0] ||
          (halted[0] && result.outputs[static_cast<std::size_t>(v)] != result.outputs[0])) {
        result.uniform_throughout = false;
      }
    }
  }
  for (int r : result.halt_round) result.rounds = std::max(result.rounds, r);
  return result;
}

bool pn_matching_valid(const PortNetwork& net, const std::vector<PnOutput>& outputs) {
  const int n = net.node_count();
  if (static_cast<int>(outputs.size()) != n) return false;
  for (NodeIndex v = 0; v < n; ++v) {
    const PnOutput out = outputs[static_cast<std::size_t>(v)];
    if (out == kPnUnmatched) continue;
    if (out < 1 || out > net.degree(v)) return false;  // (M1)
    const PortNetwork::End e = net.endpoint(v, out);
    if (outputs[static_cast<std::size_t>(e.node)] != e.port) return false;  // (M2)
  }
  // (M3): no edge with two unmatched endpoints.
  for (NodeIndex v = 0; v < n; ++v) {
    if (outputs[static_cast<std::size_t>(v)] != kPnUnmatched) continue;
    for (Port p = 1; p <= net.degree(v); ++p) {
      const PortNetwork::End e = net.endpoint(v, p);
      if (outputs[static_cast<std::size_t>(e.node)] == kPnUnmatched) return false;
    }
  }
  return true;
}

bool pn_symmetry_defeats(const PnProgramFactory& factory, int cycle_size, int max_rounds) {
  const PortNetwork net = PortNetwork::symmetric_cycle(cycle_size);
  PnRunResult run;
  try {
    run = run_pn(net, factory, max_rounds);
  } catch (const std::runtime_error&) {
    return true;  // never halted: also not a correct algorithm
  }
  // A deterministic algorithm on a transitive instance stays uniform; a
  // uniform output is never a valid maximal matching on the cycle.
  return run.uniform_throughout && !pn_matching_valid(net, run.outputs);
}

}  // namespace dmm::pn
