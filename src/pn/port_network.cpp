#include "pn/port_network.hpp"

#include <stdexcept>

namespace dmm::pn {

PortNetwork::PortNetwork(int n) {
  if (n < 0) throw std::invalid_argument("PortNetwork: negative size");
  links_.resize(static_cast<std::size_t>(n));
}

int PortNetwork::degree(NodeIndex v) const {
  if (v < 0 || v >= node_count()) throw std::out_of_range("PortNetwork: bad node");
  return static_cast<int>(links_[static_cast<std::size_t>(v)].size());
}

void PortNetwork::connect(NodeIndex u, Port p, NodeIndex v, Port q) {
  if (u < 0 || u >= node_count() || v < 0 || v >= node_count()) {
    throw std::out_of_range("PortNetwork: bad node");
  }
  if (p < 1 || q < 1) throw std::invalid_argument("PortNetwork: ports are 1-based");
  auto& lu = links_[static_cast<std::size_t>(u)];
  auto& lv = links_[static_cast<std::size_t>(v)];
  if (static_cast<std::size_t>(p) <= lu.size() && lu[static_cast<std::size_t>(p - 1)].port != 0) {
    throw std::logic_error("PortNetwork: port already used at u");
  }
  if (static_cast<std::size_t>(q) <= lv.size() && lv[static_cast<std::size_t>(q - 1)].port != 0) {
    throw std::logic_error("PortNetwork: port already used at v");
  }
  if (lu.size() < static_cast<std::size_t>(p)) lu.resize(static_cast<std::size_t>(p), End{-1, 0});
  if (lv.size() < static_cast<std::size_t>(q)) lv.resize(static_cast<std::size_t>(q), End{-1, 0});
  lu[static_cast<std::size_t>(p - 1)] = End{v, q};
  lv[static_cast<std::size_t>(q - 1)] = End{u, p};
}

PortNetwork::End PortNetwork::endpoint(NodeIndex v, Port p) const {
  if (v < 0 || v >= node_count()) throw std::out_of_range("PortNetwork: bad node");
  const auto& lv = links_[static_cast<std::size_t>(v)];
  if (p < 1 || static_cast<std::size_t>(p) > lv.size() || lv[static_cast<std::size_t>(p - 1)].port == 0) {
    throw std::invalid_argument("PortNetwork: no such port");
  }
  return lv[static_cast<std::size_t>(p - 1)];
}

bool PortNetwork::is_valid() const {
  for (const auto& ports : links_) {
    for (const End& e : ports) {
      if (e.port == 0) return false;  // gap in the numbering
    }
  }
  return true;
}

PortNetwork PortNetwork::from_coloured(const graph::EdgeColouredGraph& g) {
  PortNetwork out(g.node_count());
  // Port of an edge at a node = rank of its colour among the node's
  // incident colours (incident_colours is sorted).
  auto port_of = [&](NodeIndex v, gk::Colour c) -> Port {
    const auto colours = g.incident_colours(v);
    for (std::size_t i = 0; i < colours.size(); ++i) {
      if (colours[i] == c) return static_cast<Port>(i + 1);
    }
    throw std::logic_error("PortNetwork::from_coloured: colour not incident");
  };
  for (const graph::Edge& e : g.edges()) {
    out.connect(e.u, port_of(e.u, e.colour), e.v, port_of(e.v, e.colour));
  }
  return out;
}

PortNetwork PortNetwork::symmetric_cycle(int n) {
  if (n < 3) throw std::invalid_argument("PortNetwork::symmetric_cycle: need n >= 3");
  PortNetwork out(n);
  for (NodeIndex v = 0; v < n; ++v) {
    // Port 1 at v = clockwise edge to v+1; the same edge is port 2 at v+1.
    out.connect(v, 1, (v + 1) % n, 2);
  }
  return out;
}

}  // namespace dmm::pn
