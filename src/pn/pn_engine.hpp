// Synchronous engine for the port-numbering model, plus the broadcast
// variant of [2] (§1.4: the paper's lower bound covers both).
//
// A PN program initially knows only its degree; it exchanges messages per
// port.  In the broadcast variant, a node must send the *same* message on
// all ports (enforced by the engine); the edge-coloured greedy algorithm
// is naturally a broadcast algorithm — its messages carry only the node's
// matched/free status.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pn/port_network.hpp"

namespace dmm::pn {

using Message = std::string;

/// Local output in the PN model: the matched port, or 0 for unmatched.
using PnOutput = Port;
inline constexpr PnOutput kPnUnmatched = 0;

class PnProgram {
 public:
  virtual ~PnProgram() = default;
  /// Initial knowledge is the degree only.  Return true to halt.
  virtual bool init(int degree) = 0;
  /// One message per port (1..degree).
  virtual std::map<Port, Message> send(int round) = 0;
  virtual bool receive(int round, const std::map<Port, Message>& inbox) = 0;
  virtual PnOutput output() const = 0;
};

using PnProgramFactory = std::function<std::unique_ptr<PnProgram>()>;

struct PnRunResult {
  std::vector<PnOutput> outputs;
  std::vector<int> halt_round;
  int rounds = 0;
  /// True iff in every round every node had the same state footprint
  /// (same messages sent, same halting status) — the symmetry invariant
  /// of transitive PN networks such as symmetric_cycle.
  bool uniform_throughout = true;
};

/// Runs the PN engine.  If `broadcast` is true, throws if any node tries
/// to send different messages on different ports.
PnRunResult run_pn(const PortNetwork& net, const PnProgramFactory& factory, int max_rounds,
                   bool broadcast = false);

/// Checks the §2.4 conditions translated to ports: matched ports pair up
/// consistently and no edge has two unmatched endpoints.
bool pn_matching_valid(const PortNetwork& net, const std::vector<PnOutput>& outputs);

/// The §1.4 demonstration: on the symmetric cycle, any deterministic PN
/// algorithm produces uniform outputs, and uniform outputs are never a
/// valid maximal matching (all-⊥ is not maximal; "everyone matches port p"
/// is inconsistent).  Returns true iff the algorithm indeed failed there.
bool pn_symmetry_defeats(const PnProgramFactory& factory, int cycle_size, int max_rounds);

}  // namespace dmm::pn
