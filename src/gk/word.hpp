// The free Coxeter group G_k = <1,...,k | 1^2, ..., k^2>  (paper §2.1).
//
// Elements are reduced words over the colour alphabet [k] = {1,...,k}: a
// sequence c1 c2 ... cl with c_{i-1} != c_i.  The reduced form is unique and
// corresponds to the colour sequence of the unique path from the identity e
// to the element in the Cayley graph Γ_k, so |x| (the word length) is also
// the graph distance d(e, x).
//
// The API mirrors the paper's notation: tail(x), head(x), pred(x), the norm
// |x|, the inverse x̄, and the left-translation metric d(x,y) = |x̄ y|.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dmm::gk {

/// A colour in [k]; 1-based.  Colour 0 is reserved as "no colour".
using Colour = std::uint8_t;
inline constexpr Colour kNoColour = 0;

/// An element of G_k in reduced form.
///
/// The class maintains the invariant that the stored letter sequence is
/// reduced (no two adjacent equal letters, every letter >= 1).  All factory
/// functions and operators preserve it; Word::letters() is always reduced.
class Word {
 public:
  /// The identity element e.
  Word() = default;

  /// The generator c (requires c >= 1).
  static Word generator(Colour c);

  /// Builds an element from an arbitrary (not necessarily reduced) letter
  /// sequence, performing free reduction cc -> e.
  static Word from_letters(const std::vector<Colour>& letters);

  /// Parses "e" or a string like "3.1.2" (colours separated by '.').
  static Word parse(const std::string& text);

  bool is_identity() const noexcept { return letters_.empty(); }

  /// The norm |x| = length of the reduced word = d(e, x) in Γ_k.
  int norm() const noexcept { return static_cast<int>(letters_.size()); }

  /// tail(x): the unique colour c with |xc| = |x| - 1 (the last letter).
  /// Requires x != e.
  Colour tail() const;

  /// head(x) = tail(x̄) (the first letter).  Requires x != e.
  Colour head() const;

  /// pred(x) = x * tail(x): the element one step closer to e.  Requires
  /// x != e.
  Word pred() const;

  /// The inverse x̄ = x^{-1} (the reversed word; each generator is an
  /// involution).
  Word inverse() const;

  /// Group operation with free reduction at the seam.
  Word operator*(const Word& rhs) const;

  /// Right-multiplication by a generator; the common hot path.
  Word operator*(Colour c) const;

  bool operator==(const Word& rhs) const noexcept = default;
  auto operator<=>(const Word& rhs) const noexcept = default;

  /// Reduced letters, head first.
  const std::vector<Colour>& letters() const noexcept { return letters_; }

  /// Human-readable form: "e" or "3.1.2".
  std::string str() const;

 private:
  std::vector<Colour> letters_;
};

/// Graph distance in Γ_k: d(x, y) = |x̄ y|.
int distance(const Word& x, const Word& y);

/// True iff |xy| = |x| + |y| (no cancellation at the seam), i.e. x == e,
/// y == e, or tail(x) != head(y).
bool norm_additive(const Word& x, const Word& y);

struct WordHash {
  std::size_t operator()(const Word& w) const noexcept;
};

}  // namespace dmm::gk
