#include "gk/word.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace dmm::gk {

Word Word::generator(Colour c) {
  if (c < 1) throw std::invalid_argument("Word::generator: colour must be >= 1");
  Word w;
  w.letters_.push_back(c);
  return w;
}

Word Word::from_letters(const std::vector<Colour>& letters) {
  Word w;
  for (Colour c : letters) {
    if (c < 1) throw std::invalid_argument("Word::from_letters: colour must be >= 1");
    if (!w.letters_.empty() && w.letters_.back() == c) {
      w.letters_.pop_back();  // cc = e
    } else {
      w.letters_.push_back(c);
    }
  }
  return w;
}

Word Word::parse(const std::string& text) {
  if (text == "e" || text.empty()) return Word{};
  std::vector<Colour> letters;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t dot = text.find('.', pos);
    if (dot == std::string::npos) dot = text.size();
    const int value = std::stoi(text.substr(pos, dot - pos));
    if (value < 1 || value > 255) throw std::invalid_argument("Word::parse: colour out of range");
    letters.push_back(static_cast<Colour>(value));
    pos = dot + 1;
  }
  return from_letters(letters);
}

Colour Word::tail() const {
  if (letters_.empty()) throw std::logic_error("Word::tail on identity");
  return letters_.back();
}

Colour Word::head() const {
  if (letters_.empty()) throw std::logic_error("Word::head on identity");
  return letters_.front();
}

Word Word::pred() const {
  if (letters_.empty()) throw std::logic_error("Word::pred on identity");
  Word w = *this;
  w.letters_.pop_back();
  return w;
}

Word Word::inverse() const {
  Word w = *this;
  std::reverse(w.letters_.begin(), w.letters_.end());
  return w;
}

Word Word::operator*(const Word& rhs) const {
  // Cancel the seam: the suffix of *this against the prefix of rhs.
  std::size_t cut = 0;
  const std::size_t max_cut = std::min(letters_.size(), rhs.letters_.size());
  while (cut < max_cut && letters_[letters_.size() - 1 - cut] == rhs.letters_[cut]) {
    ++cut;
  }
  Word w;
  w.letters_.reserve(letters_.size() + rhs.letters_.size() - 2 * cut);
  w.letters_.insert(w.letters_.end(), letters_.begin(), letters_.end() - static_cast<std::ptrdiff_t>(cut));
  w.letters_.insert(w.letters_.end(), rhs.letters_.begin() + static_cast<std::ptrdiff_t>(cut), rhs.letters_.end());
  // Both inputs are reduced and we cancelled greedily at the seam, so the
  // result is reduced: after removing the cancelling block, the adjoining
  // letters differ (otherwise the block would have been longer), except when
  // one side is exhausted, in which case the survivor is a reduced word.
  return w;
}

Word Word::operator*(Colour c) const {
  if (c < 1) throw std::invalid_argument("Word::operator*: colour must be >= 1");
  Word w = *this;
  if (!w.letters_.empty() && w.letters_.back() == c) {
    w.letters_.pop_back();
  } else {
    w.letters_.push_back(c);
  }
  return w;
}

std::string Word::str() const {
  if (letters_.empty()) return "e";
  std::string out;
  for (std::size_t i = 0; i < letters_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(static_cast<int>(letters_[i]));
  }
  return out;
}

int distance(const Word& x, const Word& y) {
  return (x.inverse() * y).norm();
}

bool norm_additive(const Word& x, const Word& y) {
  if (x.is_identity() || y.is_identity()) return true;
  return x.tail() != y.head();
}

std::size_t WordHash::operator()(const Word& w) const noexcept {
  return static_cast<std::size_t>(fnv1a(w.letters().data(), w.letters().size()));
}

}  // namespace dmm::gk
