// dmm — Distributed Maximal Matching: Greedy is Optimal.
//
// Umbrella header: a faithful, executable reproduction of Hirvonen &
// Suomela, "Distributed maximal matching: greedy is optimal", PODC 2012.
//
//   dmm::gk      — the free Coxeter group G_k (§2.1)
//   dmm::colsys  — colour systems as rooted edge-coloured trees (§2.2)
//   dmm::graph   — finite properly edge-coloured instances + generators
//   dmm::local   — the LOCAL model: views, message passing, §2.3 semantics
//   dmm::algo    — greedy (Lemma 1) and the §1.1/§1.3 landscape
//   dmm::dyn     — dynamic maximal matching under edge churn
//   dmm::verify  — the (M1)(M2)(M3) output conditions (§2.4)
//   dmm::lower   — templates, pickers, extensions, realisations, critical
//                  pairs, and the executable adversary of Theorems 2/5
//   dmm::cover   — universal covers of looped multigraphs (Remark 1)
#pragma once

#include "algo/bipartite_matching.hpp"
#include "algo/cole_vishkin.hpp"
#include "algo/colour_reduction.hpp"
#include "algo/edge_packing.hpp"
#include "algo/greedy.hpp"
#include "algo/randomized_matching.hpp"
#include "algo/runner.hpp"
#include "algo/truncated_greedy.hpp"
#include "algo/two_colour.hpp"
#include "algo/vertex_colouring.hpp"
#include "algo/zero_round_table.hpp"
#include "colsys/colour_system.hpp"
#include "cover/multigraph.hpp"
#include "cover/universal_cover.hpp"
#include "dyn/churn.hpp"
#include "dyn/dynamic_matcher.hpp"
#include "gk/word.hpp"
#include "io/dot.hpp"
#include "io/serialize.hpp"
#include "graph/edge_coloured_graph.hpp"
#include "graph/generators.hpp"
#include "local/algorithm.hpp"
#include "local/ball.hpp"
#include "local/checkpoint.hpp"
#include "local/engine.hpp"
#include "local/faults.hpp"
#include "local/flat_engine.hpp"
#include "local/flooding.hpp"
#include "local/runtime.hpp"
#include "local/view_engine.hpp"
#include "lower/adversary.hpp"
#include "lower/critical_pair.hpp"
#include "lower/extension.hpp"
#include "lower/picker.hpp"
#include "lower/realisation.hpp"
#include "lower/template.hpp"
#include "lower/zero_template.hpp"
#include "nbhd/csp.hpp"
#include "nbhd/views.hpp"
#include "pn/adapter.hpp"
#include "pn/pn_engine.hpp"
#include "pn/port_network.hpp"
#include "svc/service.hpp"
#include "util/logstar.hpp"
#include "util/rng.hpp"
#include "verify/matching.hpp"
