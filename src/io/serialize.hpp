// Plain-text serialisation for instances, colour systems, templates and
// adversary certificates — so that counterexamples can be archived,
// diffed, and re-checked by an independent process.
//
// Formats are line-based and versioned:
//
//   dmm-graph 1          dmm-system 1            dmm-template 1
//   n <n> k <k>          k <k> valid <r|exact>   h <h>
//   e <u> <v> <c>        p <parent> <colour>     <dmm-system block>
//   ...                  ...  (one per non-root  tau <t0> <t1> ...
//                        node, in NodeId order)
//
// Certificates embed their template plus the violation metadata; reading
// one back and calling lower::certificate_holds on it re-verifies the
// refutation from nothing but the file contents.
//
// Below the text formats sits the binary *frame* layer (ISSUE 8): a
// versioned, checksummed envelope for checkpoint payloads (engine
// checkpoints, evaluator memos, adversary hunt state).  Every frame is
//
//   "DMMF" <type:4> <version:u32 LE> <payload_len:u64 LE> <payload> <fnv1a64:u64 LE>
//
// and every defect — truncation, a length prefix past the end of the
// stream or beyond kMaxFramePayload, a checksum mismatch — raises the
// typed CorruptFrameError, so a damaged checkpoint is reported, never
// silently resumed.  Payloads are assembled with ByteWriter and decoded
// with ByteReader, whose every read is bounds-checked (LEB128 varints
// reject overlong encodings; length-prefixed byte runs reject prefixes
// that overrun the buffer).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "graph/edge_coloured_graph.hpp"
#include "lower/realisation.hpp"

namespace dmm::io {

std::string write_graph(const graph::EdgeColouredGraph& g);
graph::EdgeColouredGraph read_graph(const std::string& text);

std::string write_system(const colsys::ColourSystem& system);
colsys::ColourSystem read_system(const std::string& text);

std::string write_template(const lower::Template& tmpl);
lower::Template read_template(const std::string& text);

std::string write_certificate(const lower::Certificate& cert);
lower::Certificate read_certificate(const std::string& text);

// ---------------------------------------------------------------------------
// Binary frame layer.
// ---------------------------------------------------------------------------

/// Any defect in binary frame input: truncation, bad magic, an oversized or
/// overrunning length prefix, an overlong varint, a checksum mismatch.
class CorruptFrameError : public std::runtime_error {
 public:
  explicit CorruptFrameError(const std::string& what)
      : std::runtime_error("dmm::io corrupt frame: " + what) {}
};

/// Hard cap on a single frame payload (1 GiB): a declared length beyond
/// this is rejected before any allocation, so a corrupted length prefix
/// cannot become a multi-terabyte resize.
inline constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 30;

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;

/// FNV-1a over `size` bytes, chainable through `seed`.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = kFnvOffset) noexcept;

/// Append-only payload builder.  Integers are LEB128 varints (svarint
/// zigzags first); byte runs are varint-length-prefixed.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void varint(std::uint64_t v);
  void svarint(std::int64_t v);
  void bytes(std::string_view v);
  const std::string& buffer() const noexcept { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked payload decoder over a borrowed buffer.  Every read that
/// would pass the end of the buffer — including a length prefix larger than
/// what remains — throws CorruptFrameError.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint64_t varint();
  std::int64_t svarint();
  /// A varint-length-prefixed byte run; the view borrows the buffer.
  std::string_view bytes();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }
  /// Throws unless the whole buffer has been consumed — trailing garbage in
  /// a payload is as corrupt as a truncated one.
  void expect_done(const char* context) const;

 private:
  [[noreturn]] void fail(const std::string& what) const;
  std::string_view data_;
  std::size_t pos_ = 0;
};

struct Frame {
  std::string type;  // exactly 4 characters
  std::uint32_t version = 0;
  std::string payload;
};

/// Writes one checksummed frame.  `type` must be exactly 4 characters.
void write_frame(std::ostream& out, std::string_view type, std::uint32_t version,
                 std::string_view payload);

/// Reads and verifies one frame.  Throws CorruptFrameError on any damage,
/// and on a type mismatch when `expected_type` is non-empty.
Frame read_frame(std::istream& in, std::string_view expected_type = {});

}  // namespace dmm::io
