// Plain-text serialisation for instances, colour systems, templates and
// adversary certificates — so that counterexamples can be archived,
// diffed, and re-checked by an independent process.
//
// Formats are line-based and versioned:
//
//   dmm-graph 1          dmm-system 1            dmm-template 1
//   n <n> k <k>          k <k> valid <r|exact>   h <h>
//   e <u> <v> <c>        p <parent> <colour>     <dmm-system block>
//   ...                  ...  (one per non-root  tau <t0> <t1> ...
//                        node, in NodeId order)
//
// Certificates embed their template plus the violation metadata; reading
// one back and calling lower::certificate_holds on it re-verifies the
// refutation from nothing but the file contents.
#pragma once

#include <string>

#include "graph/edge_coloured_graph.hpp"
#include "lower/realisation.hpp"

namespace dmm::io {

std::string write_graph(const graph::EdgeColouredGraph& g);
graph::EdgeColouredGraph read_graph(const std::string& text);

std::string write_system(const colsys::ColourSystem& system);
colsys::ColourSystem read_system(const std::string& text);

std::string write_template(const lower::Template& tmpl);
lower::Template read_template(const std::string& text);

std::string write_certificate(const lower::Certificate& cert);
lower::Certificate read_certificate(const std::string& text);

}  // namespace dmm::io
