#include "io/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dmm::io {

namespace {

std::runtime_error parse_error(const std::string& what) {
  return std::runtime_error("dmm::io parse error: " + what);
}

/// Reads one whitespace token; throws on EOF.
std::string token(std::istringstream& in, const char* context) {
  std::string t;
  if (!(in >> t)) throw parse_error(std::string("unexpected end of input in ") + context);
  return t;
}

int int_token(std::istringstream& in, const char* context) {
  return std::stoi(token(in, context));
}

void expect(std::istringstream& in, const char* literal) {
  const std::string t = token(in, literal);
  if (t != literal) throw parse_error("expected '" + std::string(literal) + "', got '" + t + "'");
}

}  // namespace

std::string write_graph(const graph::EdgeColouredGraph& g) {
  std::ostringstream out;
  out << "dmm-graph 1\n";
  out << "n " << g.node_count() << " k " << g.k() << "\n";
  for (const graph::Edge& e : g.edges()) {
    out << "e " << e.u << " " << e.v << " " << static_cast<int>(e.colour) << "\n";
  }
  return out.str();
}

graph::EdgeColouredGraph read_graph(const std::string& text) {
  std::istringstream in(text);
  expect(in, "dmm-graph");
  if (int_token(in, "graph version") != 1) throw parse_error("unsupported graph version");
  expect(in, "n");
  const int n = int_token(in, "node count");
  expect(in, "k");
  const int k = int_token(in, "palette");
  graph::EdgeColouredGraph g(n, k);
  std::string tag;
  while (in >> tag) {
    if (tag != "e") throw parse_error("expected edge line, got '" + tag + "'");
    const int u = int_token(in, "edge u");
    const int v = int_token(in, "edge v");
    const int c = int_token(in, "edge colour");
    g.add_edge(u, v, static_cast<gk::Colour>(c));
  }
  return g;
}

std::string write_system(const colsys::ColourSystem& system) {
  std::ostringstream out;
  out << "dmm-system 1\n";
  out << "k " << system.k() << " valid ";
  if (system.is_exact()) {
    out << "exact";
  } else {
    out << system.valid_radius();
  }
  out << "\n";
  for (colsys::NodeId v = 1; v < system.size(); ++v) {
    out << "p " << system.parent(v) << " " << static_cast<int>(system.parent_colour(v)) << "\n";
  }
  return out.str();
}

colsys::ColourSystem read_system(const std::string& text) {
  std::istringstream in(text);
  expect(in, "dmm-system");
  if (int_token(in, "system version") != 1) throw parse_error("unsupported system version");
  expect(in, "k");
  const int k = int_token(in, "palette");
  expect(in, "valid");
  const std::string valid = token(in, "valid radius");
  colsys::ColourSystem system(k, valid == "exact" ? colsys::kExactRadius : std::stoi(valid));
  std::string tag;
  while (in >> tag) {
    if (tag != "p") throw parse_error("expected node line, got '" + tag + "'");
    const int parent = int_token(in, "parent");
    const int colour = int_token(in, "colour");
    // Nodes are written in id order, so parents always precede children and
    // add_child reproduces the exact same NodeIds.
    system.add_child(parent, static_cast<gk::Colour>(colour));
  }
  return system;
}

std::string write_template(const lower::Template& tmpl) {
  std::ostringstream out;
  out << "dmm-template 1\n";
  out << "h " << tmpl.h() << "\n";
  out << write_system(tmpl.tree());
  out << "tau";
  for (colsys::NodeId v = 0; v < tmpl.tree().size(); ++v) {
    out << " " << static_cast<int>(tmpl.tau(v));
  }
  out << "\n";
  return out.str();
}

lower::Template read_template(const std::string& text) {
  const std::size_t tau_pos = text.rfind("tau");
  if (tau_pos == std::string::npos) throw parse_error("template missing tau line");
  std::istringstream head(text.substr(0, tau_pos));
  expect(head, "dmm-template");
  if (int_token(head, "template version") != 1) throw parse_error("unsupported template version");
  expect(head, "h");
  const int h = int_token(head, "regularity");
  // The rest of the head is the embedded system block.
  std::string system_block;
  std::getline(head, system_block, '\0');
  colsys::ColourSystem tree = read_system(system_block);

  std::istringstream tail(text.substr(tau_pos));
  expect(tail, "tau");
  std::vector<gk::Colour> tau;
  int value = 0;
  while (tail >> value) tau.push_back(static_cast<gk::Colour>(value));
  if (static_cast<int>(tau.size()) != tree.size()) throw parse_error("tau length mismatch");
  return lower::make_template_unchecked(std::move(tree), std::move(tau), h);
}

namespace {

const char* kind_name(lower::Certificate::Kind kind) {
  switch (kind) {
    case lower::Certificate::Kind::M1: return "M1";
    case lower::Certificate::Kind::M2: return "M2";
    case lower::Certificate::Kind::M3: return "M3";
    case lower::Certificate::Kind::L9: return "L9";
  }
  return "?";
}

lower::Certificate::Kind kind_from(const std::string& name) {
  if (name == "M1") return lower::Certificate::Kind::M1;
  if (name == "M2") return lower::Certificate::Kind::M2;
  if (name == "M3") return lower::Certificate::Kind::M3;
  if (name == "L9") return lower::Certificate::Kind::L9;
  throw parse_error("unknown certificate kind '" + name + "'");
}

}  // namespace

std::string write_certificate(const lower::Certificate& cert) {
  std::ostringstream out;
  out << "dmm-certificate 1\n";
  out << "kind " << kind_name(cert.kind) << "\n";
  out << "node " << cert.node << " other " << cert.other << " colour "
      << static_cast<int>(cert.colour) << " output " << static_cast<int>(cert.output)
      << " other_output " << static_cast<int>(cert.other_output) << "\n";
  out << "detail " << (cert.detail.empty() ? "-" : cert.detail) << "\n";
  out << write_template(cert.instance);
  return out.str();
}

lower::Certificate read_certificate(const std::string& text) {
  const std::size_t tmpl_pos = text.find("dmm-template");
  if (tmpl_pos == std::string::npos) throw parse_error("certificate missing template block");
  std::istringstream head(text.substr(0, tmpl_pos));
  expect(head, "dmm-certificate");
  if (int_token(head, "certificate version") != 1) {
    throw parse_error("unsupported certificate version");
  }
  expect(head, "kind");
  const lower::Certificate::Kind kind = kind_from(token(head, "kind"));
  expect(head, "node");
  const int node = int_token(head, "node");
  expect(head, "other");
  const int other = int_token(head, "other");
  expect(head, "colour");
  const int colour = int_token(head, "colour");
  expect(head, "output");
  const int output = int_token(head, "output");
  expect(head, "other_output");
  const int other_output = int_token(head, "other output");
  expect(head, "detail");
  std::string detail;
  std::getline(head, detail);
  if (!detail.empty() && detail.front() == ' ') detail.erase(0, 1);
  if (detail == "-") detail.clear();

  lower::Template instance = read_template(text.substr(tmpl_pos));
  return lower::Certificate{kind,
                            std::move(instance),
                            node,
                            other,
                            static_cast<gk::Colour>(colour),
                            static_cast<gk::Colour>(output),
                            static_cast<gk::Colour>(other_output),
                            std::move(detail)};
}

// ---------------------------------------------------------------------------
// Binary frame layer.
// ---------------------------------------------------------------------------

namespace {

constexpr char kFrameMagic[4] = {'D', 'M', 'M', 'F'};
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void put_u32(std::ostream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

void get_exact(std::istream& in, char* dst, std::size_t size, const char* context) {
  in.read(dst, static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in.gcount()) != size) {
    throw CorruptFrameError(std::string("truncated input in ") + context);
  }
}

std::uint32_t get_u32(std::istream& in, const char* context) {
  char b[4];
  get_exact(in, b, 4, context);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::istream& in, const char* context) {
  char b[8];
  get_exact(in, b, 8, context);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

/// The checksum covers everything after the magic: type, version,
/// payload_len and the payload bytes, chained through one FNV state.
std::uint64_t frame_checksum(std::string_view type, std::uint32_t version,
                             std::string_view payload) {
  std::uint64_t sum = fnv1a64(type.data(), type.size());
  char header[12];
  for (int i = 0; i < 4; ++i) header[i] = static_cast<char>((version >> (8 * i)) & 0xff);
  const auto len = static_cast<std::uint64_t>(payload.size());
  for (int i = 0; i < 8; ++i) header[4 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  sum = fnv1a64(header, sizeof(header), sum);
  return fnv1a64(payload.data(), payload.size(), sum);
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  // Zigzag: small magnitudes of either sign stay short.
  varint((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::bytes(std::string_view v) {
  varint(v.size());
  buf_.append(v.data(), v.size());
}

std::uint8_t ByteReader::u8() {
  if (pos_ >= data_.size()) fail("unexpected end of payload");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = u8();
    // The 10th byte may only carry the top bit of a 64-bit value; anything
    // larger is an overlong encoding, not a longer integer.
    if (shift == 63 && byte > 1) fail("varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  fail("varint longer than 10 bytes");
}

std::int64_t ByteReader::svarint() {
  const std::uint64_t z = varint();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

std::string_view ByteReader::bytes() {
  const std::uint64_t len = varint();
  if (len > remaining()) fail("length prefix overruns the payload");
  const std::string_view v = data_.substr(pos_, static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return v;
}

void ByteReader::expect_done(const char* context) const {
  if (!done()) {
    throw CorruptFrameError(std::string("trailing bytes after ") + context);
  }
}

void ByteReader::fail(const std::string& what) const {
  throw CorruptFrameError(what + " (at offset " + std::to_string(pos_) + ")");
}

void write_frame(std::ostream& out, std::string_view type, std::uint32_t version,
                 std::string_view payload) {
  if (type.size() != 4) throw std::invalid_argument("write_frame: type must be 4 characters");
  if (payload.size() > kMaxFramePayload) {
    throw std::length_error("write_frame: payload exceeds kMaxFramePayload");
  }
  out.write(kFrameMagic, 4);
  out.write(type.data(), 4);
  put_u32(out, version);
  put_u64(out, payload.size());
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  put_u64(out, frame_checksum(type, version, payload));
  if (!out) throw std::runtime_error("write_frame: stream write failed");
}

Frame read_frame(std::istream& in, std::string_view expected_type) {
  char magic[4];
  get_exact(in, magic, 4, "frame magic");
  if (std::string_view(magic, 4) != std::string_view(kFrameMagic, 4)) {
    throw CorruptFrameError("bad frame magic");
  }
  Frame frame;
  char type[4];
  get_exact(in, type, 4, "frame type");
  frame.type.assign(type, 4);
  frame.version = get_u32(in, "frame version");
  const std::uint64_t len = get_u64(in, "frame length");
  if (len > kMaxFramePayload) {
    throw CorruptFrameError("declared payload length " + std::to_string(len) +
                            " exceeds the frame cap");
  }
  frame.payload.resize(static_cast<std::size_t>(len));
  if (len > 0) get_exact(in, frame.payload.data(), frame.payload.size(), "frame payload");
  const std::uint64_t stored = get_u64(in, "frame checksum");
  if (stored != frame_checksum(frame.type, frame.version, frame.payload)) {
    throw CorruptFrameError("checksum mismatch in '" + frame.type + "' frame");
  }
  if (!expected_type.empty() && frame.type != expected_type) {
    throw CorruptFrameError("expected a '" + std::string(expected_type) + "' frame, found '" +
                            frame.type + "'");
  }
  return frame;
}

}  // namespace dmm::io
