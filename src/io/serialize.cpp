#include "io/serialize.hpp"

#include <sstream>
#include <stdexcept>

namespace dmm::io {

namespace {

std::runtime_error parse_error(const std::string& what) {
  return std::runtime_error("dmm::io parse error: " + what);
}

/// Reads one whitespace token; throws on EOF.
std::string token(std::istringstream& in, const char* context) {
  std::string t;
  if (!(in >> t)) throw parse_error(std::string("unexpected end of input in ") + context);
  return t;
}

int int_token(std::istringstream& in, const char* context) {
  return std::stoi(token(in, context));
}

void expect(std::istringstream& in, const char* literal) {
  const std::string t = token(in, literal);
  if (t != literal) throw parse_error("expected '" + std::string(literal) + "', got '" + t + "'");
}

}  // namespace

std::string write_graph(const graph::EdgeColouredGraph& g) {
  std::ostringstream out;
  out << "dmm-graph 1\n";
  out << "n " << g.node_count() << " k " << g.k() << "\n";
  for (const graph::Edge& e : g.edges()) {
    out << "e " << e.u << " " << e.v << " " << static_cast<int>(e.colour) << "\n";
  }
  return out.str();
}

graph::EdgeColouredGraph read_graph(const std::string& text) {
  std::istringstream in(text);
  expect(in, "dmm-graph");
  if (int_token(in, "graph version") != 1) throw parse_error("unsupported graph version");
  expect(in, "n");
  const int n = int_token(in, "node count");
  expect(in, "k");
  const int k = int_token(in, "palette");
  graph::EdgeColouredGraph g(n, k);
  std::string tag;
  while (in >> tag) {
    if (tag != "e") throw parse_error("expected edge line, got '" + tag + "'");
    const int u = int_token(in, "edge u");
    const int v = int_token(in, "edge v");
    const int c = int_token(in, "edge colour");
    g.add_edge(u, v, static_cast<gk::Colour>(c));
  }
  return g;
}

std::string write_system(const colsys::ColourSystem& system) {
  std::ostringstream out;
  out << "dmm-system 1\n";
  out << "k " << system.k() << " valid ";
  if (system.is_exact()) {
    out << "exact";
  } else {
    out << system.valid_radius();
  }
  out << "\n";
  for (colsys::NodeId v = 1; v < system.size(); ++v) {
    out << "p " << system.parent(v) << " " << static_cast<int>(system.parent_colour(v)) << "\n";
  }
  return out.str();
}

colsys::ColourSystem read_system(const std::string& text) {
  std::istringstream in(text);
  expect(in, "dmm-system");
  if (int_token(in, "system version") != 1) throw parse_error("unsupported system version");
  expect(in, "k");
  const int k = int_token(in, "palette");
  expect(in, "valid");
  const std::string valid = token(in, "valid radius");
  colsys::ColourSystem system(k, valid == "exact" ? colsys::kExactRadius : std::stoi(valid));
  std::string tag;
  while (in >> tag) {
    if (tag != "p") throw parse_error("expected node line, got '" + tag + "'");
    const int parent = int_token(in, "parent");
    const int colour = int_token(in, "colour");
    // Nodes are written in id order, so parents always precede children and
    // add_child reproduces the exact same NodeIds.
    system.add_child(parent, static_cast<gk::Colour>(colour));
  }
  return system;
}

std::string write_template(const lower::Template& tmpl) {
  std::ostringstream out;
  out << "dmm-template 1\n";
  out << "h " << tmpl.h() << "\n";
  out << write_system(tmpl.tree());
  out << "tau";
  for (colsys::NodeId v = 0; v < tmpl.tree().size(); ++v) {
    out << " " << static_cast<int>(tmpl.tau(v));
  }
  out << "\n";
  return out.str();
}

lower::Template read_template(const std::string& text) {
  const std::size_t tau_pos = text.rfind("tau");
  if (tau_pos == std::string::npos) throw parse_error("template missing tau line");
  std::istringstream head(text.substr(0, tau_pos));
  expect(head, "dmm-template");
  if (int_token(head, "template version") != 1) throw parse_error("unsupported template version");
  expect(head, "h");
  const int h = int_token(head, "regularity");
  // The rest of the head is the embedded system block.
  std::string system_block;
  std::getline(head, system_block, '\0');
  colsys::ColourSystem tree = read_system(system_block);

  std::istringstream tail(text.substr(tau_pos));
  expect(tail, "tau");
  std::vector<gk::Colour> tau;
  int value = 0;
  while (tail >> value) tau.push_back(static_cast<gk::Colour>(value));
  if (static_cast<int>(tau.size()) != tree.size()) throw parse_error("tau length mismatch");
  return lower::make_template_unchecked(std::move(tree), std::move(tau), h);
}

namespace {

const char* kind_name(lower::Certificate::Kind kind) {
  switch (kind) {
    case lower::Certificate::Kind::M1: return "M1";
    case lower::Certificate::Kind::M2: return "M2";
    case lower::Certificate::Kind::M3: return "M3";
    case lower::Certificate::Kind::L9: return "L9";
  }
  return "?";
}

lower::Certificate::Kind kind_from(const std::string& name) {
  if (name == "M1") return lower::Certificate::Kind::M1;
  if (name == "M2") return lower::Certificate::Kind::M2;
  if (name == "M3") return lower::Certificate::Kind::M3;
  if (name == "L9") return lower::Certificate::Kind::L9;
  throw parse_error("unknown certificate kind '" + name + "'");
}

}  // namespace

std::string write_certificate(const lower::Certificate& cert) {
  std::ostringstream out;
  out << "dmm-certificate 1\n";
  out << "kind " << kind_name(cert.kind) << "\n";
  out << "node " << cert.node << " other " << cert.other << " colour "
      << static_cast<int>(cert.colour) << " output " << static_cast<int>(cert.output)
      << " other_output " << static_cast<int>(cert.other_output) << "\n";
  out << "detail " << (cert.detail.empty() ? "-" : cert.detail) << "\n";
  out << write_template(cert.instance);
  return out.str();
}

lower::Certificate read_certificate(const std::string& text) {
  const std::size_t tmpl_pos = text.find("dmm-template");
  if (tmpl_pos == std::string::npos) throw parse_error("certificate missing template block");
  std::istringstream head(text.substr(0, tmpl_pos));
  expect(head, "dmm-certificate");
  if (int_token(head, "certificate version") != 1) {
    throw parse_error("unsupported certificate version");
  }
  expect(head, "kind");
  const lower::Certificate::Kind kind = kind_from(token(head, "kind"));
  expect(head, "node");
  const int node = int_token(head, "node");
  expect(head, "other");
  const int other = int_token(head, "other");
  expect(head, "colour");
  const int colour = int_token(head, "colour");
  expect(head, "output");
  const int output = int_token(head, "output");
  expect(head, "other_output");
  const int other_output = int_token(head, "other output");
  expect(head, "detail");
  std::string detail;
  std::getline(head, detail);
  if (!detail.empty() && detail.front() == ' ') detail.erase(0, 1);
  if (detail == "-") detail.clear();

  lower::Template instance = read_template(text.substr(tmpl_pos));
  return lower::Certificate{kind,
                            std::move(instance),
                            node,
                            other,
                            static_cast<gk::Colour>(colour),
                            static_cast<gk::Colour>(output),
                            static_cast<gk::Colour>(other_output),
                            std::move(detail)};
}

}  // namespace dmm::io
