#include "io/dot.hpp"

namespace dmm::io {

namespace {

const char* pen_colour(gk::Colour c) {
  static const char* palette[] = {"red",    "blue",   "forestgreen", "orange",
                                  "purple", "brown",  "deeppink",    "teal",
                                  "gray40", "olive",  "navy",        "firebrick"};
  return palette[(c - 1) % 12];
}

std::string edge_attrs(gk::Colour c) {
  return std::string(" [label=\"") + std::to_string(static_cast<int>(c)) + "\", color=" +
         pen_colour(c) + "]";
}

}  // namespace

std::string to_dot(const graph::EdgeColouredGraph& g, const std::string& name) {
  std::string out = "graph " + name + " {\n  node [shape=circle, label=\"\"];\n";
  for (graph::NodeIndex v = 0; v < g.node_count(); ++v) {
    out += "  n" + std::to_string(v) + ";\n";
  }
  for (const graph::Edge& e : g.edges()) {
    out += "  n" + std::to_string(e.u) + " -- n" + std::to_string(e.v) + edge_attrs(e.colour) +
           ";\n";
  }
  out += "}\n";
  return out;
}

std::string to_dot(const colsys::ColourSystem& system, int max_depth, const std::string& name) {
  std::string out = "graph " + name + " {\n  node [shape=ellipse];\n";
  for (colsys::NodeId v : system.nodes_up_to(max_depth)) {
    out += "  n" + std::to_string(v) + " [label=\"" + system.word_of(v).str() + "\"];\n";
  }
  for (colsys::NodeId v : system.nodes_up_to(max_depth)) {
    if (v == colsys::ColourSystem::root()) continue;
    out += "  n" + std::to_string(system.parent(v)) + " -- n" + std::to_string(v) +
           edge_attrs(system.parent_colour(v)) + ";\n";
  }
  out += "}\n";
  return out;
}

std::string to_dot(const lower::Template& tmpl, int max_depth, const std::string& name) {
  const colsys::ColourSystem& tree = tmpl.tree();
  std::string out = "graph " + name + " {\n  node [shape=record];\n";
  for (colsys::NodeId v : tree.nodes_up_to(max_depth)) {
    out += "  n" + std::to_string(v) + " [label=\"" + tree.word_of(v).str() + " | tau=" +
           std::to_string(static_cast<int>(tmpl.tau(v))) + "\"];\n";
  }
  for (colsys::NodeId v : tree.nodes_up_to(max_depth)) {
    if (v == colsys::ColourSystem::root()) continue;
    out += "  n" + std::to_string(tree.parent(v)) + " -- n" + std::to_string(v) +
           edge_attrs(tree.parent_colour(v)) + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace dmm::io
