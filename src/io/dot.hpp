// GraphViz DOT export for the structures in this library — handy for
// inspecting worst-case instances, templates and adversary certificates.
//
// Edge colours map to a fixed visual palette (cycled past 12); forbidden
// colours (τ) are rendered into node labels for templates.
#pragma once

#include <string>

#include "colsys/colour_system.hpp"
#include "graph/edge_coloured_graph.hpp"
#include "lower/template.hpp"

namespace dmm::io {

/// DOT for a finite instance.  Nodes are unlabelled circles (anonymity);
/// edges carry their colour as both label and pen colour.
std::string to_dot(const graph::EdgeColouredGraph& g, const std::string& name = "instance");

/// DOT for a colour system truncation (nodes labelled by their words).
std::string to_dot(const colsys::ColourSystem& system, int max_depth,
                   const std::string& name = "colour_system");

/// DOT for a template: like the colour system, with "word | tau" labels.
std::string to_dot(const lower::Template& tmpl, int max_depth,
                   const std::string& name = "template");

}  // namespace dmm::io
