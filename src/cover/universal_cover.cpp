#include "cover/universal_cover.hpp"

#include <deque>

namespace dmm::cover {

colsys::ColourSystem universal_cover(const Multigraph& g, NodeIndex base, int depth,
                                     std::vector<NodeIndex>* labels) {
  colsys::ColourSystem out(g.k(), depth);
  if (labels) {
    labels->clear();
    labels->push_back(base);
  }
  struct Item {
    NodeIndex label;
    colsys::NodeId lift;
    Colour arrived;
    int d;
  };
  std::deque<Item> queue{{base, colsys::ColourSystem::root(), gk::kNoColour, 0}};
  bool truncated = false;
  while (!queue.empty()) {
    const Item it = queue.front();
    queue.pop_front();
    if (it.d == depth) {
      truncated = true;
      continue;
    }
    for (Colour c : g.colours_at(it.label)) {
      if (c == it.arrived) continue;
      const NodeIndex next = *g.port(it.label, c);
      const colsys::NodeId lift = out.add_child(it.lift, c);
      if (labels) labels->push_back(next);
      queue.push_back({next, lift, c, it.d + 1});
    }
  }
  if (!truncated) {
    colsys::ColourSystem exact(g.k(), colsys::kExactRadius);
    for (colsys::NodeId v = 1; v < out.size(); ++v) {
      exact.add_child(out.parent(v), out.parent_colour(v));
    }
    out = std::move(exact);
  }
  return out;
}

}  // namespace dmm::cover
