#include "cover/multigraph.hpp"

#include <stdexcept>

namespace dmm::cover {

Multigraph::Multigraph(int n, int k) : k_(k) {
  if (n < 1) throw std::invalid_argument("Multigraph: need at least one node");
  if (k < 1) throw std::invalid_argument("Multigraph: k must be >= 1");
  ports_.assign(static_cast<std::size_t>(n),
                std::vector<NodeIndex>(static_cast<std::size_t>(k), -1));
}

void Multigraph::check(NodeIndex v, Colour c) const {
  if (v < 0 || v >= node_count()) throw std::out_of_range("Multigraph: bad node");
  if (c < 1 || c > k_) throw std::invalid_argument("Multigraph: bad colour");
}

void Multigraph::add_edge(NodeIndex u, NodeIndex v, Colour c) {
  check(u, c);
  check(v, c);
  if (u == v) throw std::invalid_argument("Multigraph: use add_loop for self-loops");
  if (ports_[static_cast<std::size_t>(u)][c - 1] != -1 ||
      ports_[static_cast<std::size_t>(v)][c - 1] != -1) {
    throw std::logic_error("Multigraph: port already in use");
  }
  ports_[static_cast<std::size_t>(u)][c - 1] = v;
  ports_[static_cast<std::size_t>(v)][c - 1] = u;
}

void Multigraph::add_loop(NodeIndex v, Colour c) {
  check(v, c);
  if (ports_[static_cast<std::size_t>(v)][c - 1] != -1) {
    throw std::logic_error("Multigraph: port already in use");
  }
  ports_[static_cast<std::size_t>(v)][c - 1] = v;
}

std::optional<NodeIndex> Multigraph::port(NodeIndex v, Colour c) const {
  check(v, c);
  const NodeIndex to = ports_[static_cast<std::size_t>(v)][c - 1];
  if (to == -1) return std::nullopt;
  return to;
}

bool Multigraph::has_loop(NodeIndex v, Colour c) const {
  check(v, c);
  return ports_[static_cast<std::size_t>(v)][c - 1] == v;
}

std::vector<Colour> Multigraph::colours_at(NodeIndex v) const {
  check(v, 1);
  std::vector<Colour> out;
  for (Colour c = 1; c <= k_; ++c) {
    if (ports_[static_cast<std::size_t>(v)][c - 1] != -1) out.push_back(c);
  }
  return out;
}

}  // namespace dmm::cover
