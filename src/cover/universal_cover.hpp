// Universal covers of edge-coloured multigraphs (Remark 1, after Angluin).
//
// The cover is unfolded breadth-first: a lift over base node t expands one
// edge per port colour, except back along the colour it arrived by (the
// walk stays reduced); a self-loop lifts to an honest edge towards a fresh
// copy, from which the same colour leads back — the colours behave as the
// involutive generators of G_k, which is exactly why the cover of the
// looped Γ_k(T) is the extension ext(T, τ, P).
#pragma once

#include "colsys/colour_system.hpp"
#include "cover/multigraph.hpp"

namespace dmm::cover {

/// The universal cover of g, truncated to `depth`, rooted over `base`.
/// Also reports the base-node label of every cover node via `labels`
/// (cover NodeId -> base NodeIndex) when non-null.
colsys::ColourSystem universal_cover(const Multigraph& g, NodeIndex base, int depth,
                                     std::vector<NodeIndex>* labels = nullptr);

}  // namespace dmm::cover
