// Edge-coloured multigraphs with self-loops (Remark 1 of §3.3).
//
// The paper observes that an extension ext(T, τ, P) is the universal cover
// of the multigraph obtained from Γ_k(T) by adding a self-loop of colour c
// at t for each c ∈ P(t).  This module provides such multigraphs and their
// covers as an independent implementation path for extensions; the test
// suite checks the two constructions agree node-for-node (experiment E11).
#pragma once

#include <optional>
#include <vector>

#include "gk/word.hpp"

namespace dmm::cover {

using gk::Colour;
using NodeIndex = std::int32_t;

/// A finite connected multigraph with at most one port per (node, colour);
/// a port either leads to another node or loops back (self-loop).
class Multigraph {
 public:
  Multigraph(int n, int k);

  int node_count() const noexcept { return static_cast<int>(ports_.size()); }
  int k() const noexcept { return k_; }

  void add_edge(NodeIndex u, NodeIndex v, Colour c);
  void add_loop(NodeIndex v, Colour c);

  /// The endpoint of v's colour-c port: another node, v itself (loop), or
  /// nothing.
  std::optional<NodeIndex> port(NodeIndex v, Colour c) const;

  bool has_loop(NodeIndex v, Colour c) const;

  /// Sorted port colours at v.
  std::vector<Colour> colours_at(NodeIndex v) const;

 private:
  void check(NodeIndex v, Colour c) const;

  int k_;
  // ports_[v][c-1]: -1 absent, v itself for a loop, else the neighbour.
  std::vector<std::vector<NodeIndex>> ports_;
};

}  // namespace dmm::cover
